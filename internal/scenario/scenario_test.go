package scenario

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"booters/internal/honeypot"
)

// testStart is a Monday (the catalog anchor).
var testStart = time.Date(2017, time.July, 3, 0, 0, 0, 0, time.UTC)

// smallConfig is a fast scenario for unit tests that don't need a
// fit-worthy span.
func smallConfig() Config {
	return Config{
		Name:            "unit",
		Seed:            42,
		Start:           testStart,
		Weeks:           6,
		BaselineAttacks: 40,
	}
}

func TestWithDefaultsValidation(t *testing.T) {
	bad := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"zero weeks", func(c *Config) { c.Weeks = 0 }, "Weeks must be positive"},
		{"no start", func(c *Config) { c.Start = time.Time{} }, "Start is required"},
		{"bad noise", func(c *Config) { c.Noise = "gaussian" }, "unknown noise kind"},
		{"negative pool", func(c *Config) { c.VictimPool = -1 }, "VictimPool"},
		{"unnamed takedown", func(c *Config) { c.Takedowns = []Takedown{{Week: 1, Weeks: 2, DropPct: 50}} }, "needs a name"},
		{"takedown outside span", func(c *Config) { c.Takedowns = []Takedown{{Name: "T", Week: 4, Weeks: 4, DropPct: 50}} }, "outside the 6-week span"},
		{"takedown full drop", func(c *Config) { c.Takedowns = []Takedown{{Name: "T", Week: 1, Weeks: 2, DropPct: 100}} }, "DropPct"},
		{"migration over 100", func(c *Config) {
			c.Takedowns = []Takedown{{Name: "T", Week: 1, Weeks: 2, DropPct: 50, MigrationPct: 120}}
		}, "MigrationPct"},
		{"unnamed sale", func(c *Config) { c.FlashSales = []FlashSale{{Week: 1, Weeks: 1, BoostPct: 50}} }, "needs a name"},
		{"sale boost", func(c *Config) { c.FlashSales = []FlashSale{{Name: "S", Week: 1, Weeks: 1}} }, "BoostPct"},
		{"mitigation without pool", func(c *Config) { c.Mitigation = &MitigationSpec{PerVictimWeekly: 2} }, "requires VictimPool"},
		{"mitigation cap", func(c *Config) { c.VictimPool = 10; c.Mitigation = &MitigationSpec{} }, "PerVictimWeekly"},
		{"skew bound", func(c *Config) { c.Hostile = &HostileSpec{SkewSeconds: maxSkewSeconds + 1} }, "SkewSeconds"},
		{"reorder bound", func(c *Config) { c.Hostile = &HostileSpec{ReorderSeconds: maxReorderSeconds + 1} }, "ReorderSeconds"},
		{"duplicate bound", func(c *Config) { c.Hostile = &HostileSpec{DuplicatePct: 101} }, "DuplicatePct"},
		{"self-report share", func(c *Config) { c.SelfReport = &SelfReportSpec{Share: 1.5} }, "Share"},
	}
	for _, tc := range bad {
		cfg := smallConfig()
		tc.mut(&cfg)
		if _, err := cfg.withDefaults(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got error %v, want one containing %q", tc.name, err, tc.want)
		}
	}

	// Defaults fill, and Start normalises to its week's Monday.
	cfg := smallConfig()
	cfg.Start = testStart.AddDate(0, 0, 3) // a Thursday
	got, err := cfg.withDefaults()
	if err != nil {
		t.Fatalf("withDefaults: %v", err)
	}
	if !got.Start.Equal(testStart) {
		t.Errorf("Start not normalised to Monday: %v", got.Start)
	}
	if got.Sensors != 8 || got.ScansPerWeek != 10 {
		t.Errorf("defaults: Sensors=%d ScansPerWeek=%d", got.Sensors, got.ScansPerWeek)
	}
	cfg = smallConfig()
	cfg.SelfReport = &SelfReportSpec{}
	if got, err = cfg.withDefaults(); err != nil || got.SelfReport.Share != 0.8 {
		t.Errorf("SelfReport default share: %+v, %v", got.SelfReport, err)
	}
}

func TestPlanMath(t *testing.T) {
	cfg := smallConfig()
	cfg.BaselineAttacks = 100
	cfg.Takedowns = []Takedown{{Name: "T", Week: 2, Weeks: 3, DropPct: 50, MigrationPct: 100}}
	cfg.FlashSales = []FlashSale{{Name: "S", Week: 5, Weeks: 1, BoostPct: 80}}
	cfg, err := cfg.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	planned, err := cfg.plan()
	if err != nil {
		t.Fatal(err)
	}
	// Ramp with full migration over 3 weeks: multipliers 0.5, 0.75, 1.0.
	want := []float64{100, 100, 50, 75, 100, 180}
	if !reflect.DeepEqual(planned, want) {
		t.Errorf("plan = %v, want %v", planned, want)
	}

	// The multiplier outside the window is exactly 1.
	td := cfg.Takedowns[0]
	if td.multiplier(1) != 1 || td.multiplier(5) != 1 {
		t.Errorf("multiplier outside window: %v, %v", td.multiplier(1), td.multiplier(5))
	}
	// No migration holds the full drop across the window.
	hold := Takedown{Name: "H", Week: 0, Weeks: 4, DropPct: 40}
	for w := 0; w < 4; w++ {
		if m := hold.multiplier(w); math.Abs(m-0.6) > 1e-12 {
			t.Errorf("hold multiplier week %d = %v, want 0.6", w, m)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := smallConfig()
	cfg.Hostile = &HostileSpec{DuplicatePct: 20, ReorderSeconds: 60, SkewSeconds: 30}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Packets, b.Packets) {
		t.Error("same config generated different clean streams")
	}
	if !reflect.DeepEqual(a.Hostile, b.Hostile) {
		t.Error("same config generated different hostile streams")
	}
	aj, _ := a.Manifest.JSON()
	bj, _ := b.Manifest.JSON()
	if !bytes.Equal(aj, bj) {
		t.Error("same config generated different manifests")
	}

	cfg.Seed++
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Packets, c.Packets) {
		t.Error("different seeds generated identical streams")
	}

	// The clean stream is time-sorted; the reordered twin is not, and the
	// run says so.
	for i := 1; i < len(a.Packets); i++ {
		if a.Packets[i].Time.Before(a.Packets[i-1].Time) {
			t.Fatalf("clean stream unsorted at %d", i)
		}
	}
	if !a.RequiresUnordered() {
		t.Error("reordered run must require an unordered pipeline")
	}
	if lag := a.WatermarkLag(); lag < 60*time.Second {
		t.Errorf("WatermarkLag %v under the reorder bound", lag)
	}
	if len(a.SensorSkew) != a.Config.Sensors {
		t.Errorf("SensorSkew has %d offsets, want %d", len(a.SensorSkew), a.Config.Sensors)
	}
}

func TestCatalogGenerates(t *testing.T) {
	if testing.Short() {
		t.Skip("catalog generation is seconds of work")
	}
	names := Names()
	if len(names) < 6 {
		t.Fatalf("catalog has %d scenarios, want >= 6", len(names))
	}
	for _, name := range names {
		cfg, ok := Catalog(name)
		if !ok {
			t.Fatalf("Catalog(%q) missing", name)
		}
		if cfg.Name != name {
			t.Errorf("catalog %q has Name %q", name, cfg.Name)
		}
		if Describe(name) == "" {
			t.Errorf("catalog %q has no blurb", name)
		}
		run, err := Generate(cfg)
		if err != nil {
			t.Fatalf("Generate(%s): %v", name, err)
		}
		m := run.Manifest
		if m.Packets != len(run.Packets) || m.Weeks != cfg.Weeks {
			t.Errorf("%s: manifest totals %d/%d vs run %d/%d", name, m.Packets, m.Weeks, len(run.Packets), cfg.Weeks)
		}
		var total float64
		for _, v := range m.PlannedWeekly {
			total += v
		}
		if int(total) != m.Attacks {
			t.Errorf("%s: planned panel sums to %v, manifest says %d attacks", name, total, m.Attacks)
		}
		// Analytic recovery fixtures must assert a tolerance on every effect.
		if cfg.Market == nil {
			for _, e := range m.Effects {
				if e.CoefTolerance <= 0 {
					t.Errorf("%s: effect %q has no recovery tolerance", name, e.Name)
				}
			}
		}
	}
}

func TestLoad(t *testing.T) {
	if _, err := Load("takedown-sharp"); err != nil {
		t.Fatalf("catalog load: %v", err)
	}
	if _, err := Load("no-such-scenario"); err == nil || !strings.Contains(err.Error(), "neither a catalog scenario") {
		t.Fatalf("unknown name: %v", err)
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "custom.json")
	body := `{"name":"custom","seed":9,"start":"2017-07-03T00:00:00Z","weeks":8,
		"takedowns":[{"name":"T","week":2,"weeks":3,"drop_pct":50}]}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := Load(path)
	if err != nil {
		t.Fatalf("file load: %v", err)
	}
	if cfg.Name != "custom" || len(cfg.Takedowns) != 1 || cfg.Takedowns[0].DropPct != 50 {
		t.Errorf("file load decoded %+v", cfg)
	}

	// Unknown fields are config bugs, not extensions.
	bad := filepath.Join(dir, "typo.json")
	if err := os.WriteFile(bad, []byte(`{"name":"x","weeks":8,"takedown":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil || !strings.Contains(err.Error(), "unknown field") {
		t.Fatalf("typoed config: %v", err)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	cfg := smallConfig()
	cfg.Weeks = 8
	cfg.Takedowns = []Takedown{{Name: "T", Week: 2, Weeks: 3, DropPct: 50, CoefTolerance: 0.07}}
	run, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := run.Manifest.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := run.Manifest.JSON()
	gotJSON, _ := got.JSON()
	if !bytes.Equal(want, gotJSON) {
		t.Errorf("manifest did not round-trip:\n%s\nvs\n%s", want, gotJSON)
	}
	if got.Effects[0].CoefTolerance != 0.07 {
		t.Errorf("explicit tolerance lost: %v", got.Effects[0].CoefTolerance)
	}
	ivs := got.Interventions()
	if len(ivs) != 1 || !ivs[0].Start.Equal(testStart.AddDate(0, 0, 14)) || ivs[0].Weeks != 3 {
		t.Errorf("Interventions = %+v", ivs)
	}
	if end := got.End(); !end.Equal(testStart.AddDate(0, 0, 7*8-1)) {
		t.Errorf("End = %v", end)
	}
}

func TestHostileTransformBounds(t *testing.T) {
	cfg := smallConfig()
	run, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))

	// Duplicate inserts copies adjacent to originals.
	dup := Duplicate(run.Packets, rng, 30)
	if len(dup) <= len(run.Packets) {
		t.Fatalf("Duplicate added nothing at 30%%")
	}
	extra := 0
	for i := 1; i < len(dup); i++ {
		if dup[i] == dup[i-1] {
			extra++
		}
	}
	if extra < len(dup)-len(run.Packets) {
		t.Errorf("duplicates not adjacent: %d adjacent pairs, %d inserted", extra, len(dup)-len(run.Packets))
	}

	// Reorder displaces delivery but never past the bound: when packet i is
	// delivered, nothing later is stamped more than the window earlier.
	window := 90 * time.Second
	shuffled := make([]honeypot.Packet, len(run.Packets))
	copy(shuffled, run.Packets)
	Reorder(shuffled, rng, window)
	high := shuffled[0].Time
	for i, p := range shuffled {
		if p.Time.After(high) {
			high = p.Time
		}
		if high.Sub(p.Time) > 2*window {
			t.Fatalf("packet %d displaced %v, bound is %v", i, high.Sub(p.Time), 2*window)
		}
	}

	// Skew offsets stay inside the bound and shift every packet of a
	// sensor by the same amount.
	skewed := make([]honeypot.Packet, len(run.Packets))
	copy(skewed, run.Packets)
	max := 45 * time.Second
	offsets := SkewSensors(skewed, rng, run.Config.Sensors, max)
	for s, off := range offsets {
		if off < -max || off > max {
			t.Fatalf("sensor %d offset %v outside ±%v", s, off, max)
		}
	}
	for i := range skewed {
		want := run.Packets[i].Time.Add(offsets[run.Packets[i].Sensor])
		if !skewed[i].Time.Equal(want) {
			t.Fatalf("packet %d skewed to %v, want %v", i, skewed[i].Time, want)
		}
	}
}
