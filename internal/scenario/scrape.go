package scenario

import (
	"fmt"
	"math/rand"

	"booters/internal/dataset"
	"booters/internal/market"
	"booters/internal/scrape"
	"booters/internal/timeseries"
)

// selfReportDemandScale lifts the scenario's attack-flow counts into
// booter-counter magnitudes before feeding the market simulator, so
// self-reported totals look like the paper's (tens of thousands of
// attacks) rather than honeypot flow counts.
const selfReportDemandScale = 1000

// ScrapeEvent is one observation from the streaming scrape source: what
// the paper's weekly scraper saw on one booter's front page — alive or
// not, and the attack counter it published. Events arrive in week-major
// order, sites in a stable order within each week.
type ScrapeEvent struct {
	// Week is the 0-based scenario week of the observation.
	Week int `json:"week"`
	// Site is the booter's name.
	Site string `json:"site"`
	// Up reports whether the site answered.
	Up bool `json:"up"`
	// Total is the published lifetime attack counter (0 when down).
	Total float64 `json:"total"`
}

// generateSelfReport runs the scrape side of a scenario: a market
// simulation (seeded from the scenario, takedowns mapped to supply
// shocks) serves the configured share of planned demand; each provider's
// weekly counter observation — replayed through its counter style:
// inflated, wiping, rounded — is emitted as a ScrapeEvent and collected
// into the reference self-report panel.
func generateSelfReport(cfg Config, planned []float64, run *Run) error {
	sr := cfg.SelfReport
	mcfg := market.DefaultConfig(cfg.Weeks, cfg.Seed+1)
	for _, td := range cfg.Takedowns {
		mcfg.Shocks = append(mcfg.Shocks, market.Shock{
			Week:             td.Week,
			KillLargest:      1,
			KillFraction:     0.25 * td.DropPct / 100,
			Permanent:        true,
			EntrySuppression: 0.3,
			EntryWeeks:       3,
		})
	}
	sim, err := market.New(mcfg)
	if err != nil {
		return err
	}
	for w := 0; w < cfg.Weeks; w++ {
		if _, err := sim.Step(planned[w] * sr.Share * selfReportDemandScale); err != nil {
			return err
		}
	}

	recs := sim.Records()
	served := make([]map[int]float64, len(recs))
	for i, r := range recs {
		served[i] = r.ServedByProvider
	}
	var sites []*scrape.SiteHistory
	for _, prov := range sim.Providers() {
		h := &scrape.SiteHistory{Name: prov.Name}
		var running float64
		aliveAt := make([]bool, cfg.Weeks)
		totalAt := make([]float64, cfg.Weeks)
		for w := 0; w < cfg.Weeks; w++ {
			n := served[w][prov.ID]
			running += n
			aliveAt[w] = n > 0
			totalAt[w] = running
		}
		// Replay the provider's counter style on the running totals
		// (the same games dataset.Generate's scraper sees).
		var base float64
		if prov.Counter == market.Inflated {
			base = prov.InflationOffset
		}
		wipeRng := rand.New(rand.NewSource(cfg.Seed + int64(prov.ID)*7919))
		for w := 0; w < cfg.Weeks; w++ {
			if prov.BornWeek > w {
				h.Obs = append(h.Obs, scrape.Observation{Week: w, Up: false})
				continue
			}
			up := aliveAt[w]
			total := totalAt[w] + base
			if prov.Counter == market.Wiping && up && wipeRng.Float64() < prov.WipeRate {
				base = -totalAt[w]
				total = 0
			}
			if prov.Counter == market.Rounded {
				total = float64(int(total/1000) * 1000)
			}
			h.Obs = append(h.Obs, scrape.Observation{Week: w, Up: up, Total: total})
		}
		sites = append(sites, h)
	}

	// Emit the event stream in week-major order, sites in provider order.
	events := make([]ScrapeEvent, 0, cfg.Weeks*len(sites))
	for w := 0; w < cfg.Weeks; w++ {
		for _, h := range sites {
			o := h.Obs[w]
			events = append(events, ScrapeEvent{Week: w, Site: h.Name, Up: o.Up, Total: o.Total})
		}
	}

	run.Scrape = events
	run.SelfReport = &dataset.SelfReportPanel{
		Start:  timeseries.WeekOf(cfg.Start),
		Weeks:  cfg.Weeks,
		Sites:  sites,
		Churn:  scrape.ChurnSeries(sites, cfg.Weeks),
		Market: sim,
	}
	return nil
}

// ScrapeCollector accumulates a streaming scrape source (ScrapeEvents in
// any week-ascending order per site) back into site histories — the
// consumer side that populates a panel's self-report from ingested
// events instead of a bundled simulation.
type ScrapeCollector struct {
	sites map[string]*scrape.SiteHistory
	order []string
	weeks int
}

// NewScrapeCollector returns an empty collector.
func NewScrapeCollector() *ScrapeCollector {
	return &ScrapeCollector{sites: make(map[string]*scrape.SiteHistory)}
}

// Observe folds one event in. Events for a site must arrive in
// non-decreasing week order (the scrape stream's natural order).
func (c *ScrapeCollector) Observe(ev ScrapeEvent) error {
	h, ok := c.sites[ev.Site]
	if !ok {
		h = &scrape.SiteHistory{Name: ev.Site}
		c.sites[ev.Site] = h
		c.order = append(c.order, ev.Site)
	}
	if n := len(h.Obs); n > 0 && h.Obs[n-1].Week >= ev.Week {
		return fmt.Errorf("scenario: scrape event for %q week %d after week %d", ev.Site, ev.Week, h.Obs[n-1].Week)
	}
	h.Obs = append(h.Obs, scrape.Observation{Week: ev.Week, Up: ev.Up, Total: ev.Total})
	if ev.Week+1 > c.weeks {
		c.weeks = ev.Week + 1
	}
	return nil
}

// Sites returns the collected histories in first-seen order.
func (c *ScrapeCollector) Sites() []*scrape.SiteHistory {
	out := make([]*scrape.SiteHistory, len(c.order))
	for i, name := range c.order {
		out[i] = c.sites[name]
	}
	return out
}

// Weeks returns the number of weeks observed so far.
func (c *ScrapeCollector) Weeks() int { return c.weeks }

// Panel builds the self-report panel from the collected stream: sites,
// churn series, no bundled simulation (the collector only saw events).
func (c *ScrapeCollector) Panel(start timeseries.Week) *dataset.SelfReportPanel {
	sites := c.Sites()
	return &dataset.SelfReportPanel{
		Start: start,
		Weeks: c.weeks,
		Sites: sites,
		Churn: scrape.ChurnSeries(sites, c.weeks),
	}
}
