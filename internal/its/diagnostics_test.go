package its

import (
	"math"
	"math/rand"
	"testing"
)

func TestACFWhiteNoiseNearZero(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	acf, err := ACF(xs, 5)
	if err != nil {
		t.Fatal(err)
	}
	for lag, r := range acf {
		if math.Abs(r) > 0.06 {
			t.Errorf("lag %d: acf = %.3f, want ~0 for white noise", lag+1, r)
		}
	}
}

func TestACFAR1Positive(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	xs := make([]float64, 2000)
	for i := 1; i < len(xs); i++ {
		xs[i] = 0.7*xs[i-1] + rng.NormFloat64()
	}
	acf, err := ACF(xs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if acf[0] < 0.6 || acf[0] > 0.8 {
		t.Errorf("lag-1 acf = %.3f, want ~0.7", acf[0])
	}
	if acf[1] >= acf[0] {
		t.Error("AR(1) acf should decay")
	}
}

func TestACFValidation(t *testing.T) {
	if _, err := ACF([]float64{1, 2}, 5); err == nil {
		t.Error("accepted series shorter than maxLag")
	}
	if _, err := ACF(make([]float64, 10), 3); err == nil {
		t.Error("accepted constant series")
	}
	if _, err := ACF([]float64{1, 2, 3}, 0); err == nil {
		t.Error("accepted maxLag 0")
	}
}

func TestLjungBoxDistinguishesNoiseFromAR(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	noise := make([]float64, 300)
	ar := make([]float64, 300)
	for i := range noise {
		noise[i] = rng.NormFloat64()
		if i > 0 {
			ar[i] = 0.6*ar[i-1] + rng.NormFloat64()
		}
	}
	lbNoise, err := LjungBox(noise, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	lbAR, err := LjungBox(ar, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lbNoise.Significant(0.01) {
		t.Errorf("Ljung-Box rejected white noise: p = %.4f", lbNoise.P)
	}
	if !lbAR.Significant(0.01) {
		t.Errorf("Ljung-Box failed to reject AR(1): p = %.4f", lbAR.P)
	}
}

func TestDiagnoseWellSpecifiedModel(t *testing.T) {
	s := synthSeries(150, -30, 60, 8, 40)
	iv := Intervention{Name: "shock", Start: s.Week(60).Start, Weeks: 8}
	m, err := Fit(s, DefaultSpec([]Intervention{iv}))
	if err != nil {
		t.Fatal(err)
	}
	d, err := m.Diagnose()
	if err != nil {
		t.Fatal(err)
	}
	// A correctly specified model on independent noise: no residual
	// autocorrelation, dispersion near 1.
	if d.LjungBox.Significant(0.01) {
		t.Errorf("Ljung-Box p = %.4f on a well-specified model", d.LjungBox.P)
	}
	if d.PearsonDispersion < 0.5 || d.PearsonDispersion > 1.6 {
		t.Errorf("Pearson dispersion = %.2f, want ~1", d.PearsonDispersion)
	}
	if len(d.ACF) != 8 {
		t.Errorf("ACF lags = %d", len(d.ACF))
	}
	if d.MaxAbsResidual <= 0 {
		t.Error("MaxAbsResidual should be positive")
	}
}

func TestPlaceboTestRealEffectExtreme(t *testing.T) {
	s := synthSeries(150, -40, 60, 6, 41)
	iv := Intervention{Name: "shock", Start: s.Week(60).Start, Weeks: 6}
	res, err := PlaceboTest(s, DefaultSpec([]Intervention{iv}), "shock")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Placebos) < 50 {
		t.Fatalf("only %d placebo windows", len(res.Placebos))
	}
	if res.Observed >= 0 {
		t.Errorf("observed coefficient %.3f should be negative", res.Observed)
	}
	// The true window must be more extreme than nearly every placebo.
	if res.P > 0.05 {
		t.Errorf("placebo p = %.3f (rank %d of %d), want < 0.05", res.P, res.Rank, len(res.Placebos))
	}
}

func TestPlaceboTestNullEffectUnremarkable(t *testing.T) {
	s := synthSeries(150, 0, 0, 0, 42)
	iv := Intervention{Name: "placebo", Start: s.Week(60).Start, Weeks: 6}
	res, err := PlaceboTest(s, DefaultSpec([]Intervention{iv}), "placebo")
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.02 {
		t.Errorf("null effect ranked extreme: p = %.3f", res.P)
	}
}

func TestPlaceboTestValidation(t *testing.T) {
	s := synthSeries(150, -30, 60, 6, 43)
	iv := Intervention{Name: "shock", Start: s.Week(60).Start, Weeks: 6}
	if _, err := PlaceboTest(s, DefaultSpec([]Intervention{iv}), "missing"); err == nil {
		t.Error("accepted unknown intervention name")
	}
}

func TestLjungBoxDFAdjustment(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	full, err := LjungBox(xs, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	adj, err := LjungBox(xs, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if full.DF != 8 || adj.DF != 5 {
		t.Errorf("df = %v and %v, want 8 and 5", full.DF, adj.DF)
	}
	if full.Stat != adj.Stat {
		t.Error("statistic should not depend on df adjustment")
	}
	// Clamped at 1.
	clamped, err := LjungBox(xs, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if clamped.DF != 1 {
		t.Errorf("clamped df = %v, want 1", clamped.DF)
	}
}
