package its

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"booters/internal/glm"
	"booters/internal/stats"
	"booters/internal/timeseries"
)

func d(y int, m time.Month, day int) time.Time {
	return time.Date(y, m, day, 0, 0, 0, 0, time.UTC)
}

// synthSeries builds a weekly NB series with trend, seasonality and one
// planted intervention drop.
func synthSeries(weeks int, drop float64, dropStart, dropLen int, seed int64) *timeseries.Series {
	rng := rand.New(rand.NewSource(seed))
	start := timeseries.WeekOf(d(2016, time.June, 6))
	s := timeseries.NewSeries(start, weeks)
	for i := 0; i < weeks; i++ {
		mu := 50000 * math.Exp(0.008*float64(i))
		w := s.Week(i)
		if w.Month() == time.December {
			mu *= 1.1
		}
		if i >= dropStart && i < dropStart+dropLen {
			mu *= 1 + drop/100
		}
		s.Values[i] = float64(stats.NegBinomial{Mu: mu, Alpha: 0.002}.Rand(rng))
	}
	return s
}

func TestInterventionWindow(t *testing.T) {
	iv := Intervention{Name: "X", Start: d(2018, time.December, 19), Weeks: 3}
	w0 := timeseries.WeekOf(iv.Start)
	if !iv.Active(w0) {
		t.Error("intervention should be active in its start week")
	}
	if !iv.Active(w0.Next().Next()) {
		t.Error("intervention should be active in week 2")
	}
	w3 := w0.Next().Next().Next()
	if iv.Active(w3) {
		t.Error("intervention should be inactive after Weeks weeks")
	}
	before := timeseries.Week{Start: w0.Start.AddDate(0, 0, -7)}
	if iv.Active(before) {
		t.Error("intervention should be inactive before start")
	}
	// Lag shifts the window.
	lagged := Intervention{Name: "X", Start: d(2018, time.December, 19), Weeks: 3, LagWeeks: 2}
	if lagged.Active(w0) {
		t.Error("lagged intervention should not be active at event week")
	}
	if !lagged.Active(w0.Next().Next()) {
		t.Error("lagged intervention should be active after lag")
	}
}

func TestDesignShape(t *testing.T) {
	s := synthSeries(100, 0, 0, 0, 1)
	ivs := []Intervention{
		{Name: "A", Start: d(2017, time.January, 4), Weeks: 4},
		{Name: "B", Start: d(2017, time.June, 7), Weeks: 2},
	}
	x, names := Design(s, DefaultSpec(ivs))
	n, p := x.Dims()
	if n != 100 {
		t.Errorf("rows = %d", n)
	}
	// 2 interventions + Easter + 11 seasonals + time + cons = 16.
	if p != 16 || len(names) != 16 {
		t.Errorf("cols = %d, names = %d", p, len(names))
	}
	if names[0] != "A" || names[2] != "Easter" || names[p-2] != "time" || names[p-1] != "_cons" {
		t.Errorf("names = %v", names)
	}
	// Intervention columns sum to their durations.
	var sumA, sumB float64
	for i := 0; i < n; i++ {
		sumA += x.At(i, 0)
		sumB += x.At(i, 1)
	}
	if sumA != 4 || sumB != 2 {
		t.Errorf("dummy sums = %v, %v; want 4, 2", sumA, sumB)
	}
}

func TestFitRecoversPlantedDrop(t *testing.T) {
	const planted = -30.0
	s := synthSeries(150, planted, 60, 8, 2)
	iv := Intervention{Name: "shock", Start: s.Week(60).Start, Weeks: 8}
	m, err := Fit(s, DefaultSpec([]Intervention{iv}))
	if err != nil {
		t.Fatal(err)
	}
	eff := m.Effects[0]
	if !eff.Significant() {
		t.Errorf("planted drop not significant: p = %g", eff.P)
	}
	if math.Abs(eff.Mean-planted) > 5 {
		t.Errorf("recovered effect %.1f%%, want ~%.0f%%", eff.Mean, planted)
	}
	if eff.Lower95 > planted || eff.Upper95 < planted {
		t.Errorf("CI [%.1f, %.1f] misses truth %.0f", eff.Lower95, eff.Upper95, planted)
	}
	// Trend should be recovered too.
	tc, err := m.Fit.Coef("time")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tc.Estimate-0.008) > 0.001 {
		t.Errorf("trend = %.5f, want ~0.008", tc.Estimate)
	}
}

func TestFitNoFalsePositive(t *testing.T) {
	// No planted drop: a random window's effect should be insignificant.
	s := synthSeries(150, 0, 0, 0, 3)
	iv := Intervention{Name: "placebo", Start: s.Week(70).Start, Weeks: 5}
	m, err := Fit(s, DefaultSpec([]Intervention{iv}))
	if err != nil {
		t.Fatal(err)
	}
	if m.Effects[0].StronglySignificant() {
		t.Errorf("placebo effect strongly significant: p = %g, mean = %.1f%%", m.Effects[0].P, m.Effects[0].Mean)
	}
}

func TestCounterfactualAboveObservedInWindow(t *testing.T) {
	s := synthSeries(150, -40, 60, 8, 4)
	iv := Intervention{Name: "shock", Start: s.Week(60).Start, Weeks: 8}
	m, err := Fit(s, DefaultSpec([]Intervention{iv}))
	if err != nil {
		t.Fatal(err)
	}
	cf := m.CounterfactualSeries()
	fit := m.FittedSeries()
	for i := 60; i < 68; i++ {
		if cf.Values[i] <= fit.Values[i] {
			t.Errorf("week %d: counterfactual %.0f <= fitted %.0f inside window", i, cf.Values[i], fit.Values[i])
		}
	}
	// Outside the window the two coincide.
	for _, i := range []int{10, 50, 100, 140} {
		if math.Abs(cf.Values[i]-fit.Values[i]) > 1e-6*fit.Values[i] {
			t.Errorf("week %d: counterfactual %.2f != fitted %.2f outside window", i, cf.Values[i], fit.Values[i])
		}
	}
}

func TestSearchDurationFindsPlantedLength(t *testing.T) {
	const plantedLen = 9
	s := synthSeries(150, -35, 55, plantedLen, 5)
	iv := Intervention{Name: "shock", Start: s.Week(55).Start, Weeks: 2}
	spec := DefaultSpec([]Intervention{iv})
	best, m, err := SearchDuration(s, spec, "shock", 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	if best < plantedLen-2 || best > plantedLen+2 {
		t.Errorf("best duration = %d, want ~%d", best, plantedLen)
	}
	if m == nil || len(m.Effects) != 1 {
		t.Fatal("missing best model")
	}
	if _, _, err := SearchDuration(s, spec, "nope", 2, 4); err == nil {
		t.Error("SearchDuration accepted unknown intervention")
	}
	if _, _, err := SearchDuration(s, spec, "shock", 5, 2); err == nil {
		t.Error("SearchDuration accepted inverted range")
	}
}

func TestDetectDropsFindsPlantedWindow(t *testing.T) {
	s := synthSeries(150, -40, 60, 8, 6)
	cands, err := DetectDrops(s, glm.NegativeBinomial, 1.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no drop candidates detected")
	}
	found := false
	target := s.Week(60)
	for _, c := range cands {
		lag := timeseries.WeeksBetween(target, c.Start)
		if lag >= -2 && lag <= 3 {
			found = true
			if c.MeanResidual >= 0 {
				t.Errorf("drop candidate has non-negative residual %v", c.MeanResidual)
			}
		}
	}
	if !found {
		t.Errorf("no candidate near week 60; got %+v", cands)
	}
}

func TestMatchCandidates(t *testing.T) {
	s := synthSeries(150, -40, 60, 8, 7)
	cands := []Candidate{
		{Start: s.Week(60), Weeks: 8},
		{Start: s.Week(20), Weeks: 3},
	}
	events := []Intervention{
		{Name: "ev1", Start: s.Week(59).Start}, // one week before first candidate
		{Name: "ev2", Start: s.Week(100).Start},
	}
	got := MatchCandidates(cands, events, 3)
	if got[0] != 0 {
		t.Errorf("candidate 0 matched %d, want 0", got[0])
	}
	if got[1] != -1 {
		t.Errorf("candidate 1 matched %d, want -1", got[1])
	}
	// An event falling inside the candidate window also matches.
	events2 := []Intervention{{Name: "mid", Start: s.Week(62).Start}}
	got2 := MatchCandidates(cands[:1], events2, 2)
	if got2[0] != 0 {
		t.Errorf("mid-window event not matched: %d", got2[0])
	}
}

func TestFitShortSeriesError(t *testing.T) {
	s := synthSeries(10, 0, 0, 0, 8)
	if _, err := Fit(s, DefaultSpec(nil)); err == nil {
		t.Error("Fit accepted a 10-week series")
	}
}

func TestEffectLookup(t *testing.T) {
	s := synthSeries(150, -30, 60, 8, 9)
	iv := Intervention{Name: "shock", Start: s.Week(60).Start, Weeks: 8}
	m, err := Fit(s, DefaultSpec([]Intervention{iv}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Effect("shock"); err != nil {
		t.Errorf("Effect(shock): %v", err)
	}
	if _, err := m.Effect("missing"); err == nil {
		t.Error("Effect(missing) should fail")
	}
}

func TestPoissonVsNBSpecAblation(t *testing.T) {
	// On overdispersed data the NB spec should fit better (higher loglik
	// accounting for dispersion) — the reason the paper chose NB.
	s := synthSeries(150, -30, 60, 8, 10)
	iv := []Intervention{{Name: "shock", Start: s.Week(60).Start, Weeks: 8}}
	specNB := DefaultSpec(iv)
	specP := specNB
	specP.Family = glm.Poisson
	mNB, err := Fit(s, specNB)
	if err != nil {
		t.Fatal(err)
	}
	mP, err := Fit(s, specP)
	if err != nil {
		t.Fatal(err)
	}
	if mNB.Fit.LogLik <= mP.Fit.LogLik {
		t.Errorf("NB loglik %.1f should beat Poisson %.1f", mNB.Fit.LogLik, mP.Fit.LogLik)
	}
	// Poisson SEs on heavily overdispersed weekly counts are absurdly
	// small; NB inflates them to honest levels.
	cNB := mNB.Effects[0].Coef.SE
	cP := mP.Effects[0].Coef.SE
	if cNB <= cP {
		t.Errorf("NB SE %.5f should exceed Poisson SE %.5f", cNB, cP)
	}
}
