// Package its implements the paper's interrupted time series methodology:
// a negative binomial regression of weekly attack counts on monthly seasonal
// dummies, a movable-Easter dummy, a linear trend, and per-intervention
// window dummies; with effect sizes reported as percentage changes and 95%
// confidence intervals, an automatic duration search, and residual-based
// detection of candidate intervention windows.
package its

import (
	"fmt"
	"math"
	"sort"
	"time"

	"booters/internal/glm"
	"booters/internal/stats"
	"booters/internal/timeseries"
)

// Intervention is a dummy-variable window in the model: it takes value 1 for
// Weeks consecutive weeks starting at the week containing Start.
type Intervention struct {
	// Name labels the model column (e.g. "Xmas2018").
	Name string
	// Start is the date the intervention takes effect (the paper assumes an
	// immediate effect at the event date, possibly lagged for takedowns).
	Start time.Time
	// Weeks is the duration of the effect window in weeks.
	Weeks int
	// LagWeeks shifts the window start by whole weeks (the Webstresser
	// takedown "taking effect after a fortnight").
	LagWeeks int
}

// Window returns the first week of the effect window.
func (iv Intervention) Window() timeseries.Week {
	w := timeseries.WeekOf(iv.Start)
	for i := 0; i < iv.LagWeeks; i++ {
		w = w.Next()
	}
	return w
}

// Active reports whether week w falls inside the intervention window.
func (iv Intervention) Active(w timeseries.Week) bool {
	start := iv.Window()
	d := timeseries.WeeksBetween(start, w)
	return d >= 0 && d < iv.Weeks
}

// ModelSpec describes an ITS model to fit.
type ModelSpec struct {
	// Interventions are the dummy windows to include.
	Interventions []Intervention
	// Seasonal includes the eleven monthly dummies when true.
	Seasonal bool
	// Easter includes the movable-Easter dummy when true.
	Easter bool
	// Trend includes the linear week-index trend when true.
	Trend bool
	// Family selects Poisson or NB2 (the paper uses NB2; Poisson is the
	// ablation baseline).
	Family glm.Family
}

// DefaultSpec returns the paper's model: NB2 with seasonals, Easter and
// trend.
func DefaultSpec(interventions []Intervention) ModelSpec {
	return ModelSpec{
		Interventions: interventions,
		Seasonal:      true,
		Easter:        true,
		Trend:         true,
		Family:        glm.NegativeBinomial,
	}
}

// Design builds the design matrix and column names for series s under the
// spec. Column order matches Table 1: interventions, Easter, seasonal_2..12,
// time, _cons.
func Design(s *timeseries.Series, spec ModelSpec) (*stats.Dense, []string) {
	n := s.Len()
	var names []string
	for _, iv := range spec.Interventions {
		names = append(names, iv.Name)
	}
	if spec.Easter {
		names = append(names, "Easter")
	}
	if spec.Seasonal {
		names = append(names, timeseries.SeasonalNames()...)
	}
	if spec.Trend {
		names = append(names, "time")
	}
	names = append(names, "_cons")

	x := stats.NewDense(n, len(names))
	for i := 0; i < n; i++ {
		w := s.Week(i)
		col := 0
		for _, iv := range spec.Interventions {
			if iv.Active(w) {
				x.Set(i, col, 1)
			}
			col++
		}
		if spec.Easter {
			if timeseries.EasterWindow(w) {
				x.Set(i, col, 1)
			}
			col++
		}
		if spec.Seasonal {
			for _, v := range timeseries.SeasonalDesign(w) {
				x.Set(i, col, v)
				col++
			}
		}
		if spec.Trend {
			x.Set(i, col, float64(i))
			col++
		}
		x.Set(i, col, 1) // _cons
	}
	return x, names
}

// Effect summarises one intervention's fitted impact, in the units of
// Table 2.
type Effect struct {
	// Name is the intervention label.
	Name string
	// Start is the first week of the modelled window.
	Start timeseries.Week
	// Weeks is the modelled window duration.
	Weeks int
	// Coef is the underlying regression coefficient row.
	Coef glm.Coefficient
	// Mean is the central percentage change, 100*(exp(b)-1).
	Mean float64
	// Lower95 and Upper95 bound the percentage change CI.
	Lower95, Upper95 float64
	// P is the two-sided p-value of the coefficient.
	P float64
}

// Significant reports whether the effect is significant at 5%.
func (e Effect) Significant() bool { return e.P < 0.05 }

// StronglySignificant reports whether the effect is significant at 1%.
func (e Effect) StronglySignificant() bool { return e.P < 0.01 }

// Stars returns the paper's marker: "**" p<0.01, "*" p<0.05, "".
func (e Effect) Stars() string { return e.Coef.Stars() }

// Model is a fitted ITS model.
type Model struct {
	// Spec is the specification that was fitted.
	Spec ModelSpec
	// Series is the weekly series the model was fitted to.
	Series *timeseries.Series
	// Fit is the underlying GLM result.
	Fit *glm.Result
	// Effects holds one entry per intervention, in spec order.
	Effects []Effect
}

// Fit estimates the ITS model on series s.
func Fit(s *timeseries.Series, spec ModelSpec) (*Model, error) {
	if s.Len() < 20 {
		return nil, fmt.Errorf("its: series too short (%d weeks) for seasonal ITS model", s.Len())
	}
	x, names := Design(s, spec)
	res, err := glm.Fit(spec.Family, x, s.Values, names, glm.Options{})
	if err != nil {
		return nil, fmt.Errorf("its: %w", err)
	}
	m := &Model{Spec: spec, Series: s, Fit: res}
	for _, iv := range spec.Interventions {
		c, err := res.Coef(iv.Name)
		if err != nil {
			return nil, err
		}
		lo, hi := c.PercentChangeCI()
		m.Effects = append(m.Effects, Effect{
			Name:    iv.Name,
			Start:   iv.Window(),
			Weeks:   iv.Weeks,
			Coef:    c,
			Mean:    c.PercentChange(),
			Lower95: lo,
			Upper95: hi,
			P:       c.P,
		})
	}
	return m, nil
}

// Effect returns the named effect, or an error if absent.
func (m *Model) Effect(name string) (Effect, error) {
	for _, e := range m.Effects {
		if e.Name == name {
			return e, nil
		}
	}
	return Effect{}, fmt.Errorf("its: no effect named %q", name)
}

// FittedSeries returns the model's fitted weekly means aligned with the
// input series (the dark line of Figure 2).
func (m *Model) FittedSeries() *timeseries.Series {
	out := timeseries.NewSeries(m.Series.StartWeek, m.Series.Len())
	copy(out.Values, m.Fit.Fitted)
	return out
}

// CounterfactualSeries returns the model's prediction with all intervention
// dummies forced to zero: the expected attack counts had no intervention
// occurred.
func (m *Model) CounterfactualSeries() *timeseries.Series {
	out := timeseries.NewSeries(m.Series.StartWeek, m.Series.Len())
	spec := m.Spec
	for i := 0; i < m.Series.Len(); i++ {
		eta := m.Fit.LinearPredictor[i]
		w := m.Series.Week(i)
		col := 0
		for _, iv := range spec.Interventions {
			if iv.Active(w) {
				eta -= m.Fit.Coefficients[col].Estimate
			}
			col++
		}
		out.Values[i] = math.Exp(eta)
	}
	return out
}

// durationParsimony is the log-likelihood slack within which a shorter
// window is preferred over a longer one (half the chi-squared(1) 95%
// critical value, i.e. a likelihood-ratio test cannot distinguish them).
const durationParsimony = 1.92

// SearchDuration refits the model varying one intervention's duration from
// minWeeks to maxWeeks and returns the shortest duration whose
// log-likelihood is within durationParsimony of the maximum, together with
// its model. This implements the paper's procedure of choosing window
// lengths "fitting for optimum log-pseudolikelihood" while preferring
// parsimonious windows when the likelihood is flat.
func SearchDuration(s *timeseries.Series, spec ModelSpec, name string, minWeeks, maxWeeks int) (int, *Model, error) {
	idx := -1
	for i, iv := range spec.Interventions {
		if iv.Name == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return 0, nil, fmt.Errorf("its: SearchDuration: no intervention named %q", name)
	}
	if minWeeks < 1 || maxWeeks < minWeeks {
		return 0, nil, fmt.Errorf("its: SearchDuration: invalid range [%d, %d]", minWeeks, maxWeeks)
	}
	type trialFit struct {
		weeks int
		model *Model
	}
	var fits []trialFit
	bestLL := math.Inf(-1)
	for wks := minWeeks; wks <= maxWeeks; wks++ {
		trial := spec
		trial.Interventions = append([]Intervention(nil), spec.Interventions...)
		trial.Interventions[idx].Weeks = wks
		m, err := Fit(s, trial)
		if err != nil {
			continue
		}
		fits = append(fits, trialFit{weeks: wks, model: m})
		if m.Fit.LogLik > bestLL {
			bestLL = m.Fit.LogLik
		}
	}
	if len(fits) == 0 {
		return 0, nil, fmt.Errorf("its: SearchDuration: no duration in [%d, %d] produced a fit", minWeeks, maxWeeks)
	}
	for _, f := range fits { // ascending weeks: first within slack wins
		if f.model.Fit.LogLik >= bestLL-durationParsimony {
			return f.weeks, f.model, nil
		}
	}
	return fits[len(fits)-1].weeks, fits[len(fits)-1].model, nil
}

// SearchAllDurations greedily refines every intervention's duration in
// chronological window order, holding the others fixed while scanning
// durations within radius weeks of each intervention's initial value for
// the one that maximizes the log-likelihood. The initial value is the
// length of the residual drop the window was located from (the paper scans
// for "periods in the time series which drop significantly below the
// modelled series", then fits "for optimum log-pseudolikelihood"), so the
// search is local: unconstrained search lets a dummy wander onto
// unmodelled structure elsewhere in the series. Windows are also capped so
// they cannot run into the next intervention's window — the paper's
// modelled windows are disjoint, and letting one dummy cover another's
// weeks splits effects between them. It returns the final model.
func SearchAllDurations(s *timeseries.Series, spec ModelSpec, radius int) (*Model, error) {
	if radius < 0 {
		return nil, fmt.Errorf("its: SearchAllDurations: negative radius %d", radius)
	}
	order := make([]int, len(spec.Interventions))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return spec.Interventions[order[a]].Window().Before(spec.Interventions[order[b]].Window())
	})
	current := spec
	current.Interventions = append([]Intervention(nil), spec.Interventions...)
	var model *Model
	for oi, idx := range order {
		w0 := current.Interventions[idx].Weeks
		lo := w0 - radius
		if lo < 2 {
			lo = 2
		}
		hi := w0 + radius
		if oi+1 < len(order) {
			next := current.Interventions[order[oi+1]]
			gap := timeseries.WeeksBetween(current.Interventions[idx].Window(), next.Window())
			if gap > 0 && gap < hi {
				hi = gap
			}
		}
		if hi < lo {
			hi = lo
		}
		best, m, err := SearchDuration(s, current, current.Interventions[idx].Name, lo, hi)
		if err != nil {
			return nil, err
		}
		current.Interventions[idx].Weeks = best
		model = m
	}
	if model == nil {
		return Fit(s, current)
	}
	return model, nil
}

// Candidate is a window where the observed series drops significantly below
// the seasonal-trend baseline model.
type Candidate struct {
	// Start is the first week of the detected drop.
	Start timeseries.Week
	// Weeks is the run length of consecutive below-threshold weeks.
	Weeks int
	// MeanResidual is the average Pearson residual over the window
	// (negative for drops).
	MeanResidual float64
}

// DetectDrops fits the baseline model (seasonals + Easter + trend, no
// interventions) and scans the Pearson residuals for runs of at least
// minRun consecutive weeks below -threshold. These runs are the candidate
// intervention windows the paper then matches to police actions.
func DetectDrops(s *timeseries.Series, family glm.Family, threshold float64, minRun int) ([]Candidate, error) {
	if threshold <= 0 {
		threshold = 1
	}
	if minRun < 1 {
		minRun = 2
	}
	spec := ModelSpec{Seasonal: true, Easter: true, Trend: true, Family: family}
	m, err := Fit(s, spec)
	if err != nil {
		return nil, err
	}
	var out []Candidate
	res := m.Fit.PearsonResiduals
	i := 0
	for i < len(res) {
		if res[i] >= -threshold {
			i++
			continue
		}
		j := i
		var sum float64
		for j < len(res) && res[j] < -threshold {
			sum += res[j]
			j++
		}
		if j-i >= minRun {
			out = append(out, Candidate{
				Start:        s.Week(i),
				Weeks:        j - i,
				MeanResidual: sum / float64(j-i),
			})
		}
		i = j
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Start.Before(out[b].Start) })
	return out, nil
}

// MatchCandidates pairs detected drop windows with the catalogue of known
// interventions: a candidate matches an event if the event date falls within
// maxLagWeeks weeks before the candidate window starts (or inside it). It
// returns, for each candidate, the index into events of the matched event or
// -1.
func MatchCandidates(cands []Candidate, events []Intervention, maxLagWeeks int) []int {
	out := make([]int, len(cands))
	for i, c := range cands {
		out[i] = -1
		bestLag := maxLagWeeks + 1
		for j, ev := range events {
			evWeek := timeseries.WeekOf(ev.Start)
			lag := timeseries.WeeksBetween(evWeek, c.Start)
			if lag < 0 {
				// Event after the drop started: allow the event to fall
				// inside the window (news of sentencing mid-drop).
				if -lag < c.Weeks {
					lag = 0
				} else {
					continue
				}
			}
			if lag <= maxLagWeeks && lag < bestLag {
				bestLag = lag
				out[i] = j
			}
		}
	}
	return out
}
