package its

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"booters/internal/stats"
	"booters/internal/timeseries"
)

// synthTwoDrops builds a series with two planted drops of known durations.
func synthTwoDrops(weeks int, seed int64, aStart, aLen int, aDrop float64, bStart, bLen int, bDrop float64) *timeseries.Series {
	rng := rand.New(rand.NewSource(seed))
	start := timeseries.WeekOf(time.Date(2016, time.June, 6, 0, 0, 0, 0, time.UTC))
	s := timeseries.NewSeries(start, weeks)
	for i := 0; i < weeks; i++ {
		mu := 50000 * math.Exp(0.008*float64(i))
		if i >= aStart && i < aStart+aLen {
			mu *= 1 + aDrop/100
		}
		if i >= bStart && i < bStart+bLen {
			mu *= 1 + bDrop/100
		}
		s.Values[i] = float64(stats.NegBinomial{Mu: mu, Alpha: 0.002}.Rand(rng))
	}
	return s
}

func TestSearchAllDurationsRecoversBothWindows(t *testing.T) {
	const (
		aStart, aLen = 40, 7
		bStart, bLen = 90, 4
	)
	s := synthTwoDrops(150, 50, aStart, aLen, -35, bStart, bLen, -25)
	spec := DefaultSpec([]Intervention{
		{Name: "A", Start: s.Week(aStart).Start, Weeks: 5}, // wrong initial durations
		{Name: "B", Start: s.Week(bStart).Start, Weeks: 6},
	})
	m, err := SearchAllDurations(s, spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	effA, err := m.Effect("A")
	if err != nil {
		t.Fatal(err)
	}
	effB, err := m.Effect("B")
	if err != nil {
		t.Fatal(err)
	}
	if effA.Weeks < aLen-1 || effA.Weeks > aLen+1 {
		t.Errorf("A duration = %d, want ~%d", effA.Weeks, aLen)
	}
	if effB.Weeks < bLen-1 || effB.Weeks > bLen+1 {
		t.Errorf("B duration = %d, want ~%d", effB.Weeks, bLen)
	}
	if math.Abs(effA.Mean-(-35)) > 6 {
		t.Errorf("A effect = %.1f%%, want ~-35%%", effA.Mean)
	}
	if math.Abs(effB.Mean-(-25)) > 6 {
		t.Errorf("B effect = %.1f%%, want ~-25%%", effB.Mean)
	}
}

func TestSearchAllDurationsRespectsNonOverlapCap(t *testing.T) {
	// Two adjacent drops 6 weeks apart: the first window must be capped at
	// the gap even when its planted length is longer.
	const (
		aStart = 60
		bStart = 66
	)
	s := synthTwoDrops(150, 51, aStart, 10, -40, bStart, 5, -20)
	spec := DefaultSpec([]Intervention{
		{Name: "A", Start: s.Week(aStart).Start, Weeks: 8},
		{Name: "B", Start: s.Week(bStart).Start, Weeks: 5},
	})
	m, err := SearchAllDurations(s, spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	effA, _ := m.Effect("A")
	if effA.Weeks > 6 {
		t.Errorf("A duration = %d, must not overlap B's window (cap 6)", effA.Weeks)
	}
}

func TestSearchAllDurationsValidation(t *testing.T) {
	s := synthTwoDrops(100, 52, 40, 5, -30, 70, 4, -20)
	spec := DefaultSpec([]Intervention{{Name: "A", Start: s.Week(40).Start, Weeks: 5}})
	if _, err := SearchAllDurations(s, spec, -1); err == nil {
		t.Error("accepted negative radius")
	}
	// Radius 0 degenerates to a plain fit with the given durations.
	m, err := SearchAllDurations(s, spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	effA, _ := m.Effect("A")
	if effA.Weeks != 5 {
		t.Errorf("radius-0 duration = %d, want the initial 5", effA.Weeks)
	}
	// No interventions at all: still fits the baseline model.
	m2, err := SearchAllDurations(s, DefaultSpec(nil), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(m2.Effects) != 0 {
		t.Errorf("baseline model has %d effects", len(m2.Effects))
	}
}
