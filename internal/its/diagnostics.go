package its

import (
	"fmt"
	"math"

	"booters/internal/stats"
	"booters/internal/timeseries"
)

// ACF returns the sample autocorrelation function of xs at lags 1..maxLag.
func ACF(xs []float64, maxLag int) ([]float64, error) {
	n := len(xs)
	if maxLag < 1 {
		return nil, fmt.Errorf("its: ACF: maxLag %d < 1", maxLag)
	}
	if n <= maxLag {
		return nil, fmt.Errorf("its: ACF: need more than %d observations, have %d", maxLag, n)
	}
	mean := stats.Mean(xs)
	var denom float64
	for _, x := range xs {
		d := x - mean
		denom += d * d
	}
	if denom == 0 {
		return nil, fmt.Errorf("its: ACF: constant series")
	}
	out := make([]float64, maxLag)
	for lag := 1; lag <= maxLag; lag++ {
		var num float64
		for i := lag; i < n; i++ {
			num += (xs[i] - mean) * (xs[i-lag] - mean)
		}
		out[lag-1] = num / denom
	}
	return out, nil
}

// LjungBox performs the Ljung-Box portmanteau test for residual
// autocorrelation up to maxLag, adjusting the degrees of freedom for
// fittedParams estimated parameters. A small p-value indicates the model
// has left serial structure in the residuals — the standard adequacy check
// for interrupted-time-series regressions.
func LjungBox(resid []float64, maxLag, fittedParams int) (stats.TestResult, error) {
	acf, err := ACF(resid, maxLag)
	if err != nil {
		return stats.TestResult{}, err
	}
	n := float64(len(resid))
	var q float64
	for k, r := range acf {
		q += r * r / (n - float64(k+1))
	}
	q *= n * (n + 2)
	df := float64(maxLag - fittedParams)
	if df < 1 {
		df = 1
	}
	p := stats.ChiSquared{K: df}.SF(q)
	return stats.TestResult{Stat: q, DF: df, P: p}, nil
}

// Diagnostics summarises a fitted model's adequacy.
type Diagnostics struct {
	// LjungBox tests the Pearson residuals for autocorrelation at lag 8.
	LjungBox stats.TestResult
	// ACF holds the residual autocorrelations at lags 1..8.
	ACF []float64
	// PearsonDispersion is the Pearson chi-squared statistic divided by
	// residual degrees of freedom; ~1 for a well-specified model.
	PearsonDispersion float64
	// MaxAbsResidual is the largest absolute Pearson residual.
	MaxAbsResidual float64
}

// Diagnose computes residual diagnostics for a fitted ITS model.
func (m *Model) Diagnose() (*Diagnostics, error) {
	const maxLag = 8
	resid := m.Fit.PearsonResiduals
	lb, err := LjungBox(resid, maxLag, 0)
	if err != nil {
		return nil, err
	}
	acf, err := ACF(resid, maxLag)
	if err != nil {
		return nil, err
	}
	var chi2, maxAbs float64
	for _, r := range resid {
		chi2 += r * r
		if a := math.Abs(r); a > maxAbs {
			maxAbs = a
		}
	}
	df := float64(m.Fit.N - m.Fit.P)
	if df < 1 {
		df = 1
	}
	return &Diagnostics{
		LjungBox:          lb,
		ACF:               acf,
		PearsonDispersion: chi2 / df,
		MaxAbsResidual:    maxAbs,
	}, nil
}

// PlaceboResult is the outcome of a placebo (permutation-style) robustness
// check on one intervention.
type PlaceboResult struct {
	// Observed is the fitted coefficient of the real intervention window.
	Observed float64
	// Placebos holds the coefficients obtained by sliding the window to
	// every feasible counterfeit start week.
	Placebos []float64
	// Rank is the number of placebo coefficients at least as negative as
	// the observed one.
	Rank int
	// P is the one-sided permutation p-value (Rank+1)/(len(Placebos)+1).
	P float64
}

// PlaceboTest refits the model with the named intervention's window moved
// to every feasible start week (keeping its duration, skipping starts whose
// windows would overlap another intervention's true window) and compares
// the real coefficient against the placebo distribution. A real effect
// should be more negative than almost all placebos. This is the standard
// design-based robustness check for interrupted time series.
func PlaceboTest(s *timeseries.Series, spec ModelSpec, name string) (*PlaceboResult, error) {
	idx := -1
	for i, iv := range spec.Interventions {
		if iv.Name == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("its: PlaceboTest: no intervention named %q", name)
	}
	real, err := Fit(s, spec)
	if err != nil {
		return nil, err
	}
	obs := real.Effects[idx].Coef.Estimate
	duration := spec.Interventions[idx].Weeks

	// Other interventions' windows are off-limits for placebo placement.
	blocked := func(start timeseries.Week) bool {
		for j, iv := range spec.Interventions {
			if j == idx {
				continue
			}
			for w, k := start, 0; k < duration; w, k = w.Next(), k+1 {
				if iv.Active(w) {
					return true
				}
			}
		}
		// The true window itself is not a placebo.
		trueStart := spec.Interventions[idx].Window()
		d := timeseries.WeeksBetween(trueStart, start)
		return d > -duration && d < duration
	}

	res := &PlaceboResult{Observed: obs}
	for i := 0; i+duration <= s.Len(); i++ {
		start := s.Week(i)
		if blocked(start) {
			continue
		}
		trial := spec
		trial.Interventions = append([]Intervention(nil), spec.Interventions...)
		trial.Interventions[idx] = Intervention{Name: name, Start: start.Start, Weeks: duration}
		m, err := Fit(s, trial)
		if err != nil {
			continue
		}
		res.Placebos = append(res.Placebos, m.Effects[idx].Coef.Estimate)
	}
	if len(res.Placebos) == 0 {
		return nil, fmt.Errorf("its: PlaceboTest: no feasible placebo windows")
	}
	for _, p := range res.Placebos {
		if p <= obs {
			res.Rank++
		}
	}
	res.P = float64(res.Rank+1) / float64(len(res.Placebos)+1)
	return res, nil
}
