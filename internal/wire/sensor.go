package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"time"

	"booters/internal/ingest"
	"booters/internal/obs"
	"booters/internal/obs/trace"
	"booters/internal/spool"
)

// Feed is the record stream a sensor ships: seekable by cumulative
// record offset so a session can resume exactly where the collector's
// last ack left off. Next returns io.EOF at the current end of the
// stream; Offset is the cumulative offset of the record Next would
// return. Records must come out in non-decreasing time order — the
// collector turns each batch's max timestamp into a low-watermark
// promise for the whole session.
type Feed interface {
	// Seek positions the feed at a cumulative record offset.
	Seek(offset uint64) error
	// Next returns the record at the current offset, or io.EOF.
	Next() (ingest.Datagram, error)
	// Offset is the cumulative offset of the record Next would return.
	Offset() uint64
}

// SliceFeed serves an in-memory record slice — synthetic streams and
// tests.
type SliceFeed struct {
	recs []ingest.Datagram
	off  uint64
}

// NewSliceFeed wraps recs as a Feed starting at offset 0.
func NewSliceFeed(recs []ingest.Datagram) *SliceFeed {
	return &SliceFeed{recs: recs}
}

// Seek positions the feed at a cumulative offset.
func (f *SliceFeed) Seek(offset uint64) error {
	if offset > uint64(len(f.recs)) {
		return fmt.Errorf("wire: seek to %d beyond feed end %d", offset, len(f.recs))
	}
	f.off = offset
	return nil
}

// Next returns the record at the current offset, or io.EOF.
func (f *SliceFeed) Next() (ingest.Datagram, error) {
	if f.off >= uint64(len(f.recs)) {
		return ingest.Datagram{}, io.EOF
	}
	d := f.recs[f.off]
	f.off++
	return d, nil
}

// Offset returns the cumulative offset of the next record.
func (f *SliceFeed) Offset() uint64 { return f.off }

// SpoolFeed serves a recorded spool directory, seeking through the
// segment index via spool.OpenAt so a resume skips what it can without
// decoding it.
type SpoolFeed struct {
	dir string
	r   *spool.Reader
}

// NewSpoolFeed wraps a spool directory as a Feed. The directory is not
// opened until the first Seek (the session handshake supplies the
// offset).
func NewSpoolFeed(dir string) *SpoolFeed {
	return &SpoolFeed{dir: dir}
}

// Seek re-opens the spool positioned at a cumulative record offset.
func (f *SpoolFeed) Seek(offset uint64) error {
	if f.r != nil {
		f.r.Close()
		f.r = nil
	}
	r, err := spool.OpenAt(f.dir, offset)
	if err != nil {
		return err
	}
	f.r = r
	return nil
}

// Next returns the next spooled record, or io.EOF at the spool's end.
func (f *SpoolFeed) Next() (ingest.Datagram, error) {
	if f.r == nil {
		if err := f.Seek(0); err != nil {
			return ingest.Datagram{}, err
		}
	}
	return f.r.Next()
}

// Offset returns the cumulative offset of the next record.
func (f *SpoolFeed) Offset() uint64 {
	if f.r == nil {
		return 0
	}
	return f.r.Offset()
}

// Close releases the underlying spool reader.
func (f *SpoolFeed) Close() error {
	if f.r == nil {
		return nil
	}
	err := f.r.Close()
	f.r = nil
	return err
}

// Sensor-side defaults.
const (
	DefaultBatchRecords = 256
	DefaultHeartbeat    = 5 * time.Second
	DefaultBackoff      = 100 * time.Millisecond
	DefaultMaxBackoff   = 5 * time.Second
	DefaultMaxAttempts  = 8
)

// SensorConfig configures Ship.
type SensorConfig struct {
	// Addr is the collector's address, for the default dialer.
	Addr string

	// Sensor is this sensor's ID; the collector keys resume offsets and
	// duplicate-session kicking by it.
	Sensor uint32

	// Token is the shared secret presented in the handshake.
	Token string

	// Feed is the record stream to ship. Required.
	Feed Feed

	// BatchRecords caps records per batch frame. Defaults to
	// DefaultBatchRecords; the frame payload cap bounds large payloads
	// further.
	BatchRecords int

	// Heartbeat is the idle interval after which the sensor sends a
	// heartbeat frame so the collector's dead-session deadline never
	// fires on a merely quiet stream. Defaults to DefaultHeartbeat; keep
	// it well under the collector's DeadAfter.
	Heartbeat time.Duration

	// Linger, when positive, turns Ship into a live tail: at the feed's
	// end it idles — heartbeating, re-polling the feed, shipping
	// whatever appears — and only says goodbye once the feed has stayed
	// dry for Linger. Zero finishes at the first end-of-feed.
	Linger time.Duration

	// Backoff and MaxBackoff shape the reconnect schedule: Backoff
	// doubles per failed attempt up to MaxBackoff, and resets whenever a
	// session makes progress (the acked offset advanced).
	Backoff time.Duration
	// MaxBackoff caps the doubling reconnect delay.
	MaxBackoff time.Duration

	// MaxAttempts is the number of consecutive no-progress attempts
	// before Ship gives up. Defaults to DefaultMaxAttempts.
	MaxAttempts int

	// Dial overrides the transport, for tests that inject failing or
	// flaky connections. Defaults to TCP to Addr.
	Dial func() (net.Conn, error)

	// Metrics, when non-nil, receives the booters_wire_sensor_* families.
	Metrics *obs.Registry

	// Trace, when non-nil, samples sensor.batch spans — the roots of
	// cross-process traces. On a v2 session the sampled context rides in
	// the batch header so the collector can parent its receive span
	// under it; on a v1 session the span stays local. Nil disables
	// tracing at one pointer test.
	Trace *trace.Tracer

	// Logf, when non-nil, receives one line per connection event.
	Logf func(format string, args ...any)
}

// ShipReport summarises one Ship call.
type ShipReport struct {
	Records uint64 // records sent, counting any resent after a reconnect
	Batches uint64 // batch frames sent
	Bytes   uint64 // frame bytes written
	Dials   int    // connection attempts
	Resumes int    // reconnects that resumed a partially shipped stream
	Acked   uint64 // the collector's final acknowledged offset
}

// errFeed marks a local feed failure; redialing cannot fix it.
var errFeed = errors.New("wire: feed failed")

// Ship streams everything cfg.Feed holds to the collector and returns
// once the collector has acknowledged the stream's final offset.
// Connection loss redials with exponential backoff and resumes from the
// collector's last ack — the collector's offset dedup makes redelivery
// harmless, so Ship never loses or duplicates a record. A permanent
// reject (auth, version) or a feed failure returns immediately;
// MaxAttempts consecutive attempts without progress give up with the
// last error.
func Ship(cfg SensorConfig) (ShipReport, error) {
	var rep ShipReport
	if cfg.Feed == nil {
		return rep, fmt.Errorf("wire: sensor needs a feed")
	}
	if cfg.BatchRecords <= 0 {
		cfg.BatchRecords = DefaultBatchRecords
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = DefaultHeartbeat
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = DefaultBackoff
	}
	if cfg.MaxBackoff < cfg.Backoff {
		cfg.MaxBackoff = DefaultMaxBackoff
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = DefaultMaxAttempts
	}
	dial := cfg.Dial
	if dial == nil {
		dial = func() (net.Conn, error) { return net.DialTimeout("tcp", cfg.Addr, 10*time.Second) }
	}
	m := newSensorMetrics(cfg.Metrics, cfg.Sensor)

	attempts := 0
	backoff := cfg.Backoff
	for {
		m.dial()
		rep.Dials++
		conn, err := dial()
		if err == nil {
			var progress bool
			progress, err = shipSession(&cfg, conn, &rep, m)
			if err == nil {
				return rep, nil
			}
			var rej *RejectError
			if errors.As(err, &rej) && rej.Permanent() {
				return rep, err
			}
			if errors.Is(err, errFeed) {
				return rep, err
			}
			if progress {
				attempts, backoff = 0, cfg.Backoff
			}
		}
		attempts++
		if attempts >= cfg.MaxAttempts {
			return rep, fmt.Errorf("wire: giving up after %d attempts without progress: %w", attempts, err)
		}
		if cfg.Logf != nil {
			cfg.Logf("wire: sensor %d: %v; redialing in %v", cfg.Sensor, err, backoff)
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > cfg.MaxBackoff {
			backoff = cfg.MaxBackoff
		}
	}
}

// shipSession runs one connection: handshake, seek, ship, goodbye.
// progress reports whether the collector acknowledged anything new, so
// the caller can reset its give-up counter.
func shipSession(cfg *SensorConfig, conn net.Conn, rep *ShipReport, m *sensorMetrics) (progress bool, err error) {
	defer conn.Close()
	fr := NewFrameReader(conn)
	var fbuf, payload []byte
	write := func(t FrameType, p []byte) error {
		b, err := AppendFrame(fbuf[:0], t, p)
		if err != nil {
			return err
		}
		fbuf = b[:0]
		n, err := conn.Write(b)
		rep.Bytes += uint64(n)
		m.sentBytes(n)
		return err
	}

	// Handshake: Hello out, Welcome (or Reject) back under a deadline.
	hello, err := AppendHello(nil, Hello{Version: ProtocolVersion, Sensor: cfg.Sensor, Token: []byte(cfg.Token)})
	if err != nil {
		return false, err
	}
	if err := write(FrameHello, hello); err != nil {
		return false, err
	}
	conn.SetReadDeadline(time.Now().Add(3 * cfg.Heartbeat))
	t, p, err := fr.Next()
	if err != nil {
		return false, fmt.Errorf("wire: handshake: %w", err)
	}
	switch t {
	case FrameWelcome:
	case FrameReject:
		r, derr := DecodeReject(p)
		if derr != nil {
			return false, derr
		}
		return false, &RejectError{Code: r.Code, Msg: r.Msg}
	default:
		return false, fmt.Errorf("%w: expected welcome, got %v", ErrProtocol, t)
	}
	w, err := DecodeWelcome(p)
	if err != nil {
		return false, err
	}
	if w.Version < MinProtocolVersion || w.Version > ProtocolVersion {
		return false, &RejectError{Code: CodeVersion, Msg: fmt.Sprintf("collector speaks version %d", w.Version)}
	}
	// The Welcome's version is the session version: it decides the batch
	// header layout for everything this session ships.
	ver := w.Version
	resume := w.Resume
	if rep.Batches > 0 && resume > 0 {
		rep.Resumes++
		m.resume()
	}
	if err := cfg.Feed.Seek(resume); err != nil {
		return false, fmt.Errorf("%w: seek to %d: %v", errFeed, resume, err)
	}
	if cfg.Logf != nil {
		cfg.Logf("wire: sensor %d connected, resuming at offset %d", cfg.Sensor, resume)
	}
	conn.SetReadDeadline(time.Time{})

	// Acks arrive asynchronously — under backpressure the collector may
	// lag many batches behind — so a dedicated reader tracks the
	// cumulative acked offset while the main loop keeps writing. The
	// reader owns all reads from here on; the main loop owns all writes.
	var acked atomic.Uint64
	var rejected atomic.Pointer[RejectError]
	acked.Store(resume)
	ackTick := make(chan struct{}, 1)
	ackDone := make(chan struct{})
	go func() {
		defer close(ackDone)
		for {
			before := fr.Bytes()
			t, p, err := fr.Next()
			if err != nil {
				conn.Close()
				return
			}
			switch t {
			case FrameAck:
				a, err := DecodeAck(p)
				if err != nil {
					conn.Close()
					return
				}
				m.ack(a.Offset, int(fr.Bytes()-before))
				if a.Offset > acked.Load() {
					acked.Store(a.Offset)
				}
				select {
				case ackTick <- struct{}{}:
				default:
				}
			case FrameReject:
				if r, derr := DecodeReject(p); derr == nil {
					rejected.Store(&RejectError{Code: r.Code, Msg: r.Msg})
				}
				conn.Close()
				return
			default:
				conn.Close()
				return
			}
		}
	}()
	fail := func(err error) (bool, error) {
		conn.Close()
		<-ackDone
		if rej := rejected.Load(); rej != nil {
			err = rej
		}
		return acked.Load() > resume, err
	}

	// Ship batches until the feed runs dry (or, with Linger, stays dry).
	// The size cap leaves room for one worst-case record, so a batch can
	// never outgrow the frame payload cap.
	const sizeCap = MaxBatchPayload - (spool.RecordHeaderSize + spool.MaxRecordPayload)
	lastMark := int64(MarkUnset)
	lastSent := time.Now()
	var idleSince time.Time
	idleNap := cfg.Heartbeat / 4
	if idleNap > 250*time.Millisecond {
		idleNap = 250 * time.Millisecond
	} else if idleNap < time.Millisecond {
		idleNap = time.Millisecond
	}
	for {
		// One sampling decision per batch: the sampled context becomes
		// the trace root and, on a v2 session, rides in the header so the
		// collector's receive span is its child.
		btc := cfg.Trace.Root()
		buildStart := int64(0)
		if btc.Sampled() {
			buildStart = time.Now().UnixNano()
		}
		payload = AppendBatchHeader(payload[:0], BatchHeader{
			Base:    cfg.Feed.Offset(),
			TraceID: btc.Trace,
			SpanID:  btc.Span,
		}, ver)
		count := uint32(0)
		var ferr error
		for int(count) < cfg.BatchRecords && len(payload) < sizeCap {
			d, err := cfg.Feed.Next()
			if err != nil {
				ferr = err
				break
			}
			if payload, err = spool.AppendRecord(payload, d); err != nil {
				return fail(fmt.Errorf("%w: %v", errFeed, err))
			}
			if n := d.Time.UnixNano(); n > lastMark {
				lastMark = n
			}
			count++
		}
		if ferr != nil && ferr != io.EOF {
			return fail(fmt.Errorf("%w: %v", errFeed, ferr))
		}
		if count > 0 {
			binary.BigEndian.PutUint32(payload[8:12], count)
			if ver >= 2 {
				// Stamp the send time as late as possible — it is the
				// start of the wire-send→ingest-apply freshness clock.
				binary.BigEndian.PutUint64(payload[28:36], uint64(time.Now().UnixNano()))
			}
			if err := write(FrameBatch, payload); err != nil {
				return fail(err)
			}
			if btc.Sampled() {
				cfg.Trace.Record(trace.NameSensorBatch, int(cfg.Sensor), btc, 0,
					buildStart, time.Now().UnixNano()-buildStart, uint64(count))
			}
			rep.Batches++
			rep.Records += uint64(count)
			m.sent(int(count))
			lastSent = time.Now()
			idleSince = time.Time{}
		}
		if ferr != io.EOF {
			continue
		}
		if cfg.Linger <= 0 {
			break
		}
		if idleSince.IsZero() {
			idleSince = time.Now()
		} else if time.Since(idleSince) >= cfg.Linger {
			break
		}
		if time.Since(lastSent) >= cfg.Heartbeat {
			if err := write(FrameHeartbeat, AppendHeartbeat(nil, Heartbeat{Mark: lastMark})); err != nil {
				return fail(err)
			}
			lastSent = time.Now()
		}
		time.Sleep(idleNap)
	}

	// Goodbye: wait for the collector to work through everything sent
	// and acknowledge the final offset. Each ack restarts the patience
	// clock — under backpressure the collector is slow, not gone.
	final := cfg.Feed.Offset()
	if err := write(FrameGoodbye, AppendGoodbye(nil, Goodbye{Final: final})); err != nil {
		return fail(err)
	}
	patience := 3 * cfg.Heartbeat
	deadline := time.NewTimer(patience)
	defer deadline.Stop()
	for acked.Load() < final {
		select {
		case <-ackTick:
			if !deadline.Stop() {
				select {
				case <-deadline.C:
				default:
				}
			}
			deadline.Reset(patience)
		case <-ackDone:
			if rej := rejected.Load(); rej != nil {
				return acked.Load() > resume, rej
			}
			return acked.Load() > resume, fmt.Errorf("wire: connection lost awaiting final ack at %d (acked %d)", final, acked.Load())
		case <-deadline.C:
			return fail(fmt.Errorf("wire: no final ack at %d within %v (acked %d)", final, patience, acked.Load()))
		}
	}
	rep.Acked = acked.Load()
	conn.Close()
	<-ackDone
	if cfg.Logf != nil {
		cfg.Logf("wire: sensor %d finished at offset %d (%d batches)", cfg.Sensor, final, rep.Batches)
	}
	return rep.Acked > resume, nil
}
