package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"booters/internal/ingest"
	"booters/internal/spool"
)

// Magic opens every Hello payload, so a collector can refuse a
// mis-directed client before trusting a single field.
const Magic = "BOOTWIR1"

// ProtocolVersion is the newest protocol revision this package speaks.
// Version 2 added the trace-context fields to the Batch header; the
// rest of the protocol is unchanged. A collector accepts any version in
// [MinProtocolVersion, ProtocolVersion] and echoes the sensor's version
// in its Welcome, so old sensors keep working; anything outside the
// range is rejected with CodeVersion.
const ProtocolVersion uint16 = 2

// MinProtocolVersion is the oldest protocol revision a collector still
// accepts.
const MinProtocolVersion uint16 = 1

// MaxTokenLen caps the Hello auth token.
const MaxTokenLen = 256

// MaxRejectMsg caps a Reject frame's diagnostic message.
const MaxRejectMsg = 512

// Reject codes. CodeAuth and CodeVersion are permanent: the sensor must
// not redial with the same credentials or binary. The rest are
// per-session; a sensor may redial and resume.
const (
	CodeAuth     uint16 = 1 // bad token
	CodeVersion  uint16 = 2 // unsupported protocol version
	CodeBadFrame uint16 = 3 // frame or message violated the protocol
	CodeGap      uint16 = 4 // batch base beyond the acknowledged offset
	CodeKicked   uint16 = 5 // a newer session for the same sensor took over
	CodeShutdown uint16 = 6 // collector or pipeline is shutting down
)

// codeName names a reject code for logs and errors.
func codeName(code uint16) string {
	switch code {
	case CodeAuth:
		return "auth"
	case CodeVersion:
		return "version"
	case CodeBadFrame:
		return "bad-frame"
	case CodeGap:
		return "gap"
	case CodeKicked:
		return "kicked"
	case CodeShutdown:
		return "shutdown"
	}
	return fmt.Sprintf("code%d", code)
}

// RejectError is a peer's Reject frame surfaced as an error.
type RejectError struct {
	// Code is the reject code (CodeAuth .. CodeShutdown).
	Code uint16
	// Msg is the peer's diagnostic message.
	Msg string
}

// Error renders the reject code and diagnostic.
func (e *RejectError) Error() string {
	return fmt.Sprintf("wire: rejected (%s): %s", codeName(e.Code), e.Msg)
}

// Permanent reports whether redialing with the same configuration can
// ever succeed. Auth and version rejects are configuration errors;
// everything else is session-scoped.
func (e *RejectError) Permanent() bool {
	return e.Code == CodeAuth || e.Code == CodeVersion
}

// Hello is the sensor's opening frame: magic, protocol version, its
// sensor ID and an auth token.
type Hello struct {
	// Version is the protocol revision the sensor speaks.
	Version uint16
	// Sensor identifies the sensor; resume offsets are keyed by it.
	Sensor uint32
	// Token is the shared secret (at most MaxTokenLen bytes).
	Token []byte
}

// AppendHello encodes h after dst.
func AppendHello(dst []byte, h Hello) ([]byte, error) {
	if len(h.Token) > MaxTokenLen {
		return dst, fmt.Errorf("%w: token %d bytes exceeds cap %d", ErrProtocol, len(h.Token), MaxTokenLen)
	}
	dst = append(dst, Magic...)
	dst = binary.BigEndian.AppendUint16(dst, h.Version)
	dst = binary.BigEndian.AppendUint32(dst, h.Sensor)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(h.Token)))
	return append(dst, h.Token...), nil
}

// DecodeHello decodes a Hello payload. The token aliases b.
func DecodeHello(b []byte) (Hello, error) {
	const fixed = len(Magic) + 2 + 4 + 2
	if len(b) < fixed {
		return Hello{}, fmt.Errorf("%w: hello needs %d bytes, have %d", ErrProtocol, fixed, len(b))
	}
	if string(b[:len(Magic)]) != Magic {
		return Hello{}, fmt.Errorf("%w: bad hello magic", ErrProtocol)
	}
	var h Hello
	h.Version = binary.BigEndian.Uint16(b[8:10])
	h.Sensor = binary.BigEndian.Uint32(b[10:14])
	tlen := int(binary.BigEndian.Uint16(b[14:16]))
	if tlen > MaxTokenLen {
		return Hello{}, fmt.Errorf("%w: token claims %d bytes, cap is %d", ErrProtocol, tlen, MaxTokenLen)
	}
	if len(b) != fixed+tlen {
		return Hello{}, fmt.Errorf("%w: hello is %d bytes, token length says %d", ErrProtocol, len(b), fixed+tlen)
	}
	h.Token = b[fixed : fixed+tlen : fixed+tlen]
	return h, nil
}

// Welcome is the collector's handshake acceptance: the version it
// speaks and the cumulative record offset the sensor must resume from.
type Welcome struct {
	// Version is the protocol revision the collector speaks.
	Version uint16
	// Resume is the cumulative record offset the sensor must ship from.
	Resume uint64
}

// AppendWelcome encodes w after dst.
func AppendWelcome(dst []byte, w Welcome) []byte {
	dst = binary.BigEndian.AppendUint16(dst, w.Version)
	return binary.BigEndian.AppendUint64(dst, w.Resume)
}

// DecodeWelcome decodes a Welcome payload.
func DecodeWelcome(b []byte) (Welcome, error) {
	if len(b) != 10 {
		return Welcome{}, fmt.Errorf("%w: welcome is %d bytes, want 10", ErrProtocol, len(b))
	}
	return Welcome{
		Version: binary.BigEndian.Uint16(b[0:2]),
		Resume:  binary.BigEndian.Uint64(b[2:10]),
	}, nil
}

// Ack carries the collector's cumulative acknowledged offset: every
// record before Offset has been handed to the pipeline and will never
// be asked for again.
type Ack struct {
	// Offset is the cumulative acknowledged record offset.
	Offset uint64
}

// AppendAck encodes a after dst.
func AppendAck(dst []byte, a Ack) []byte {
	return binary.BigEndian.AppendUint64(dst, a.Offset)
}

// DecodeAck decodes an Ack payload.
func DecodeAck(b []byte) (Ack, error) {
	if len(b) != 8 {
		return Ack{}, fmt.Errorf("%w: ack is %d bytes, want 8", ErrProtocol, len(b))
	}
	return Ack{Offset: binary.BigEndian.Uint64(b[0:8])}, nil
}

// MarkUnset is the Heartbeat mark meaning "no stream-time promise yet":
// the sensor has not shipped a record this run.
const MarkUnset = math.MinInt64

// Heartbeat keeps an idle session alive and carries the sensor's
// stream-time promise: every record it will ever send after this frame
// is stamped at or after Mark (UnixNano), so the collector can advance
// the session's low-watermark source even when no data flows.
type Heartbeat struct {
	// Mark is the stream-time promise in Unix nanoseconds, or MarkUnset.
	Mark int64
}

// AppendHeartbeat encodes h after dst.
func AppendHeartbeat(dst []byte, h Heartbeat) []byte {
	return binary.BigEndian.AppendUint64(dst, uint64(h.Mark))
}

// DecodeHeartbeat decodes a Heartbeat payload.
func DecodeHeartbeat(b []byte) (Heartbeat, error) {
	if len(b) != 8 {
		return Heartbeat{}, fmt.Errorf("%w: heartbeat is %d bytes, want 8", ErrProtocol, len(b))
	}
	return Heartbeat{Mark: int64(binary.BigEndian.Uint64(b[0:8]))}, nil
}

// Goodbye announces a clean end of stream at a final cumulative offset.
// The collector answers with a final Ack so the sensor can verify
// nothing is outstanding before hanging up.
type Goodbye struct {
	// Final is the sensor's final cumulative record offset.
	Final uint64
}

// AppendGoodbye encodes g after dst.
func AppendGoodbye(dst []byte, g Goodbye) []byte {
	return binary.BigEndian.AppendUint64(dst, g.Final)
}

// DecodeGoodbye decodes a Goodbye payload.
func DecodeGoodbye(b []byte) (Goodbye, error) {
	if len(b) != 8 {
		return Goodbye{}, fmt.Errorf("%w: goodbye is %d bytes, want 8", ErrProtocol, len(b))
	}
	return Goodbye{Final: binary.BigEndian.Uint64(b[0:8])}, nil
}

// Reject is the collector's terminal refusal: a code and a short
// human-readable diagnostic. The session is over once it is sent.
type Reject struct {
	// Code is one of CodeAuth .. CodeShutdown.
	Code uint16
	// Msg is a short human-readable diagnostic.
	Msg string
}

// AppendReject encodes r after dst, truncating the message to its cap
// rather than failing — a reject is the last thing a session says and
// must always encode.
func AppendReject(dst []byte, r Reject) []byte {
	msg := r.Msg
	if len(msg) > MaxRejectMsg {
		msg = msg[:MaxRejectMsg]
	}
	dst = binary.BigEndian.AppendUint16(dst, r.Code)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(msg)))
	return append(dst, msg...)
}

// DecodeReject decodes a Reject payload.
func DecodeReject(b []byte) (Reject, error) {
	if len(b) < 4 {
		return Reject{}, fmt.Errorf("%w: reject needs 4 bytes, have %d", ErrProtocol, len(b))
	}
	var r Reject
	r.Code = binary.BigEndian.Uint16(b[0:2])
	mlen := int(binary.BigEndian.Uint16(b[2:4]))
	if mlen > MaxRejectMsg {
		return Reject{}, fmt.Errorf("%w: reject message claims %d bytes, cap is %d", ErrProtocol, mlen, MaxRejectMsg)
	}
	if len(b) != 4+mlen {
		return Reject{}, fmt.Errorf("%w: reject is %d bytes, message length says %d", ErrProtocol, len(b), 4+mlen)
	}
	r.Msg = string(b[4 : 4+mlen])
	return r, nil
}

// BatchHeader prefixes a Batch payload: the cumulative offset of the
// batch's first record and how many records follow. Records use the
// spool record encoding (spool.AppendRecord / spool.DecodeRecord).
// Version 2 appended the trace-context fields; under version 1 they
// are neither encoded nor decoded and stay zero.
type BatchHeader struct {
	// Base is the cumulative offset of the batch's first record.
	Base uint64
	// Count is the number of records that follow the header.
	Count uint32
	// TraceID and SpanID carry the sensor-side trace context of this
	// batch (v2 only; zero means the batch is unsampled). The collector
	// parents its own receive span under them, which is what stitches a
	// cross-process sensor→snapshot trace together.
	TraceID, SpanID uint64
	// SendUnixNanos is the sensor's wall clock at frame send (v2 only;
	// 0 means unknown), the start of the wire-send→ingest-apply
	// freshness measurement. Sensor and collector clocks are assumed
	// loosely synchronised; the histogram absorbs modest skew.
	SendUnixNanos int64
}

// Encoded BatchHeader lengths by protocol version.
const (
	batchHeaderSizeV1 = 12
	batchHeaderSizeV2 = 36
)

// batchHeaderSize returns the encoded header length for a negotiated
// protocol version.
func batchHeaderSize(version uint16) int {
	if version >= 2 {
		return batchHeaderSizeV2
	}
	return batchHeaderSizeV1
}

// AppendBatchHeader encodes h after dst at the negotiated protocol
// version. The caller appends Count records with spool.AppendRecord
// and frames the result as FrameBatch. Under version 1 the trace
// fields are dropped (the v1 layout has no room for them).
func AppendBatchHeader(dst []byte, h BatchHeader, version uint16) []byte {
	dst = binary.BigEndian.AppendUint64(dst, h.Base)
	dst = binary.BigEndian.AppendUint32(dst, h.Count)
	if version >= 2 {
		dst = binary.BigEndian.AppendUint64(dst, h.TraceID)
		dst = binary.BigEndian.AppendUint64(dst, h.SpanID)
		dst = binary.BigEndian.AppendUint64(dst, uint64(h.SendUnixNanos))
	}
	return dst
}

// DecodeBatchHeader decodes a Batch payload's header at the session's
// negotiated protocol version and returns the record bytes that follow
// it. The declared count is not yet verified against those bytes —
// DecodeBatchRecords does that incrementally, so a hostile count can
// never force an allocation.
func DecodeBatchHeader(b []byte, version uint16) (BatchHeader, []byte, error) {
	size := batchHeaderSize(version)
	if len(b) < size {
		return BatchHeader{}, nil, fmt.Errorf("%w: batch header needs %d bytes, have %d", ErrProtocol, size, len(b))
	}
	h := BatchHeader{
		Base:  binary.BigEndian.Uint64(b[0:8]),
		Count: binary.BigEndian.Uint32(b[8:12]),
	}
	if version >= 2 {
		h.TraceID = binary.BigEndian.Uint64(b[12:20])
		h.SpanID = binary.BigEndian.Uint64(b[20:28])
		h.SendUnixNanos = int64(binary.BigEndian.Uint64(b[28:36]))
	}
	return h, b[size:], nil
}

// DecodeBatchRecords walks the record bytes of a batch, calling fn with
// each record's index (0-based within the batch) and datagram. Record
// payloads alias b. It fails, wrapping ErrProtocol, if the bytes run
// short of the declared count or extend past it; fn's own error stops
// the walk and is returned as-is.
func DecodeBatchRecords(h BatchHeader, b []byte, fn func(i uint32, d ingest.Datagram) error) error {
	for i := uint32(0); i < h.Count; i++ {
		d, n, err := spool.DecodeRecord(b)
		if err != nil {
			return fmt.Errorf("%w: batch record %d/%d: %v", ErrProtocol, i, h.Count, err)
		}
		b = b[n:]
		if fn != nil {
			if err := fn(i, d); err != nil {
				return err
			}
		}
	}
	if len(b) != 0 {
		return fmt.Errorf("%w: %d bytes after the %d declared batch records", ErrProtocol, len(b), h.Count)
	}
	return nil
}
