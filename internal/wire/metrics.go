package wire

import (
	"strconv"
	"time"

	"booters/internal/obs"
)

// collectorMetrics instruments the collector side. All hooks are
// nil-safe: with no registry configured every call is a nil-receiver
// no-op, keeping the hot path free of branches on the caller's side.
type collectorMetrics struct {
	sessions     *obs.Gauge   // open sessions right now
	sessionsOpen *obs.Counter // sessions accepted (post-handshake)
	reaped       *obs.Counter // sessions closed by read-deadline expiry
	authFail     *obs.Counter // handshakes refused (auth, version, magic)
	resumes      *obs.Counter // sessions welcomed at a non-zero offset
	records      *obs.Counter // records handed to the pipeline
	dups         *obs.Counter // overlap records skipped by offset dedup
	bytesIn      *obs.Counter
	bytesOut     *obs.Counter
	fresh        *obs.Histogram // wire-send → ingest-apply wall latency
	framesIn     map[FrameType]*obs.Counter
	framesOut    map[FrameType]*obs.Counter
	reg          *obs.Registry
}

// newCollectorMetrics registers the collector's metric families on r,
// or returns nil for a nil registry.
func newCollectorMetrics(r *obs.Registry) *collectorMetrics {
	if r == nil {
		return nil
	}
	m := &collectorMetrics{
		sessions:     r.Gauge("booters_wire_sessions", "Open sensor sessions."),
		sessionsOpen: r.Counter("booters_wire_sessions_total", "Sensor sessions accepted since start."),
		reaped:       r.Counter("booters_wire_sessions_reaped_total", "Sessions closed because the sensor went silent past the deadline."),
		authFail:     r.Counter("booters_wire_auth_failures_total", "Handshakes refused for bad magic, version or token."),
		resumes:      r.Counter("booters_wire_resumes_total", "Sessions welcomed at a non-zero resume offset."),
		records:      r.Counter("booters_wire_records_total", "Batch records handed to the ingest pipeline."),
		dups:         r.Counter("booters_wire_records_dup_total", "Overlap records skipped by cumulative-offset dedup."),
		bytesIn:      r.Counter("booters_wire_bytes_total", "Frame bytes by direction.", obs.L("dir", "in")),
		bytesOut:     r.Counter("booters_wire_bytes_total", "Frame bytes by direction.", obs.L("dir", "out")),
		fresh: r.Histogram("booters_freshness_wire_to_apply_seconds",
			"Wall latency from a sensor stamping a batch frame at send to the collector finishing its apply (v2 sessions only; assumes loosely synchronised clocks)."),
		framesIn:  make(map[FrameType]*obs.Counter, len(frameTypes)),
		framesOut: make(map[FrameType]*obs.Counter, len(frameTypes)),
		reg:       r,
	}
	for _, t := range frameTypes {
		m.framesIn[t] = r.Counter("booters_wire_frames_total", "Frames by direction and type.",
			obs.L("dir", "in"), obs.L("type", t.String()))
		m.framesOut[t] = r.Counter("booters_wire_frames_total", "Frames by direction and type.",
			obs.L("dir", "out"), obs.L("type", t.String()))
	}
	return m
}

// frameIn books one received frame and its bytes.
func (m *collectorMetrics) frameIn(t FrameType, bytes int) {
	if m == nil {
		return
	}
	if c, ok := m.framesIn[t]; ok {
		c.Inc()
	}
	m.bytesIn.Add(uint64(bytes))
}

// frameOut books one sent frame and its bytes.
func (m *collectorMetrics) frameOut(t FrameType, bytes int) {
	if m == nil {
		return
	}
	if c, ok := m.framesOut[t]; ok {
		c.Inc()
	}
	m.bytesOut.Add(uint64(bytes))
}

// sessionOpen books an accepted session, resumed or fresh.
func (m *collectorMetrics) sessionOpen(resumed bool) {
	if m == nil {
		return
	}
	m.sessions.Add(1)
	m.sessionsOpen.Inc()
	if resumed {
		m.resumes.Inc()
	}
}

// sessionClose books a session's end; reaped means the read deadline
// expired on a silent sensor.
func (m *collectorMetrics) sessionClose(reaped bool) {
	if m == nil {
		return
	}
	m.sessions.Add(-1)
	if reaped {
		m.reaped.Inc()
	}
}

// authFailure books a refused handshake.
func (m *collectorMetrics) authFailure() {
	if m == nil {
		return
	}
	m.authFail.Inc()
}

// batch books one ingested batch: fresh records, dedup-skipped overlap,
// and the sensor's new acknowledged offset.
func (m *collectorMetrics) batch(sensor uint32, fresh, dup uint64, offset uint64) {
	if m == nil {
		return
	}
	m.records.Add(fresh)
	if dup > 0 {
		m.dups.Add(dup)
	}
	m.reg.Gauge("booters_wire_acked_offset", "Cumulative acknowledged record offset per sensor.",
		obs.L("sensor", strconv.FormatUint(uint64(sensor), 10))).Set(int64(offset))
}

// freshness books one wire-send→ingest-apply latency observation.
// Non-positive durations (clock skew putting the send "in the future")
// are dropped rather than folded into the first bucket.
func (m *collectorMetrics) freshness(d time.Duration) {
	if m == nil || d <= 0 {
		return
	}
	m.fresh.Observe(d)
}

// sessionGauges (re)points the per-sensor session gauges at st. Called
// at every session open; GaugeFunc re-registration replaces the
// callback, so a reconnect just rewires the closures onto the same
// persistent state.
func (m *collectorMetrics) sessionGauges(sensor uint32, st *sensorState) {
	if m == nil {
		return
	}
	id := obs.L("sensor", strconv.FormatUint(uint64(sensor), 10))
	m.reg.GaugeFunc("booters_wire_session_acked_offset",
		"Cumulative acknowledged record offset per sensor, read live at scrape.",
		func() float64 { return float64(st.offset.Load()) }, id)
	m.reg.GaugeFunc("booters_wire_session_mark_seconds",
		"Newest stream time promised by the sensor's heartbeats and batches, as unix seconds (0 while unknown).",
		func() float64 {
			mk := st.mark.Load()
			if mk == MarkUnset {
				return 0
			}
			return float64(mk) / 1e9
		}, id)
	m.reg.GaugeFunc("booters_wire_session_age_seconds",
		"Seconds since the sensor's most recent session passed handshake.",
		func() float64 {
			opened := st.opened.Load()
			if opened == 0 {
				return 0
			}
			return time.Since(time.Unix(0, opened)).Seconds()
		}, id)
}

// sensorMetrics instruments the shipping side. The family names carry a
// sensor_ prefix so a test running sensor and collector in one process
// can point both at the same registry without colliding.
type sensorMetrics struct {
	dials    *obs.Counter
	resumes  *obs.Counter
	batches  *obs.Counter
	records  *obs.Counter
	bytesOut *obs.Counter
	bytesIn  *obs.Counter
	acked    *obs.Gauge
}

// newSensorMetrics registers the sensor's metric families on r, or
// returns nil for a nil registry.
func newSensorMetrics(r *obs.Registry, sensor uint32) *sensorMetrics {
	if r == nil {
		return nil
	}
	id := obs.L("sensor", strconv.FormatUint(uint64(sensor), 10))
	return &sensorMetrics{
		dials:    r.Counter("booters_wire_sensor_dials_total", "Connection attempts.", id),
		resumes:  r.Counter("booters_wire_sensor_resumes_total", "Reconnects that resumed a partially shipped stream.", id),
		batches:  r.Counter("booters_wire_sensor_batches_total", "Batch frames sent.", id),
		records:  r.Counter("booters_wire_sensor_records_total", "Records sent, including any resent after reconnect.", id),
		bytesOut: r.Counter("booters_wire_sensor_bytes_total", "Frame bytes by direction.", id, obs.L("dir", "out")),
		bytesIn:  r.Counter("booters_wire_sensor_bytes_total", "Frame bytes by direction.", id, obs.L("dir", "in")),
		acked:    r.Gauge("booters_wire_sensor_acked_offset", "Last offset the collector acknowledged.", id),
	}
}

// dial books one connection attempt.
func (m *sensorMetrics) dial() {
	if m == nil {
		return
	}
	m.dials.Inc()
}

// resume books one resumed session.
func (m *sensorMetrics) resume() {
	if m == nil {
		return
	}
	m.resumes.Inc()
}

// sent books one sent batch frame; its bytes are booked by sentBytes at
// the write.
func (m *sensorMetrics) sent(records int) {
	if m == nil {
		return
	}
	m.batches.Inc()
	m.records.Add(uint64(records))
}

// sentBytes books outbound frame bytes.
func (m *sensorMetrics) sentBytes(bytes int) {
	if m == nil {
		return
	}
	m.bytesOut.Add(uint64(bytes))
}

// ack books an acknowledged offset and the ack frame's bytes.
func (m *sensorMetrics) ack(offset uint64, bytes int) {
	if m == nil {
		return
	}
	m.acked.SetMax(int64(offset))
	m.bytesIn.Add(uint64(bytes))
}
