package wire

import (
	"testing"
	"time"

	"booters/internal/honeypot"
	"booters/internal/ingest"
)

// blockSink parks shard workers in Consume until release is closed —
// the deterministic stand-in for a slow downstream consumer.
type blockSink struct {
	release chan struct{}
	entered chan struct{}
}

func newBlockSink() *blockSink {
	return &blockSink{release: make(chan struct{}), entered: make(chan struct{}, 1)}
}

// Open hands every shard a branch that blocks.
func (s *blockSink) Open(cfg *ingest.Config, shards int) ([]ingest.SinkBranch, error) {
	br := make([]ingest.SinkBranch, shards)
	for i := range br {
		br[i] = &blockBranch{s: s}
	}
	return br, nil
}

// Flush is a no-op; the sink exists only to stall.
func (s *blockSink) Flush() error { return nil }

type blockBranch struct{ s *blockSink }

// Consume signals the first arrival, then parks until released.
func (b *blockBranch) Consume(f *honeypot.Flow, c honeypot.Classification) error {
	select {
	case b.s.entered <- struct{}{}:
	default:
	}
	<-b.s.release
	return nil
}

// backpressureRecords builds a single-victim stream whose second record
// closes the first flow (15-minute gap rule), parking the worker in the
// blocking sink while `extras` more records pile into the shard queue.
func backpressureRecords(extras int) []ingest.Datagram {
	packets := []honeypot.Packet{}
	base, err := ingest.SyntheticStream(ingest.StreamConfig{
		Seed: 3, Start: testStart, Weeks: 1, Sensors: 2, AttacksPerWeek: 5,
	})
	if err != nil || len(base) == 0 {
		panic("synthetic stream failed")
	}
	tmpl := base[0]
	tmpl.Sensor = 7
	at := func(d time.Duration) honeypot.Packet {
		p := tmpl
		p.Time = testStart.Add(time.Hour + d)
		return p
	}
	packets = append(packets, at(0), at(20*time.Minute))
	for i := 0; i < extras; i++ {
		packets = append(packets, at(21*time.Minute+time.Duration(i)*time.Second))
	}
	return ingest.Datagrams(packets)
}

// backpressureCfg is a pipeline built to stall instantly: one shard,
// one-packet batches, a two-batch queue, watermarks effectively off.
func backpressureCfg(policy ingest.ShedPolicy, sink ingest.Sink) ingest.Config {
	cfg := testCfg(1, 2, false)
	cfg.BatchSize = 1
	cfg.QueueDepth = 2
	cfg.WatermarkEvery = 1 << 30
	cfg.Shed = policy
	cfg.Sinks = []ingest.Sink{sink}
	return cfg
}

// TestStalledCollectorShedsPerSensor stalls the pipeline behind a
// blocking sink under ShedDropNewest: the session must keep acking (the
// drop policy never blocks) while the overflow lands in Stats.Shed,
// attributed to the shipping sensor.
func TestStalledCollectorShedsPerSensor(t *testing.T) {
	sink := newBlockSink()
	in, err := ingest.New(backpressureCfg(ingest.ShedDropNewest, sink))
	if err != nil {
		t.Fatal(err)
	}
	col, err := Listen("127.0.0.1:0", CollectorConfig{Ingest: in, Token: "tok"})
	if err != nil {
		t.Fatal(err)
	}
	recs := backpressureRecords(32)
	rep, err := Ship(SensorConfig{
		Addr:         col.Addr().String(),
		Sensor:       7,
		Token:        "tok",
		Feed:         NewSliceFeed(recs),
		BatchRecords: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Acked != uint64(len(recs)) {
		t.Fatalf("acked %d of %d: a drop policy must never stall the session", rep.Acked, len(recs))
	}
	close(sink.release)
	col.Close()
	res, err := in.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Shed == 0 {
		t.Fatal("nothing shed despite a parked worker and a full queue")
	}
	if got := res.Stats.ShedBySensor[7]; got != res.Stats.Shed {
		t.Fatalf("ShedBySensor[7] = %d, Shed = %d — drops misattributed", got, res.Stats.Shed)
	}
	if res.Stats.Packets+res.Stats.Shed != uint64(len(recs)) {
		t.Fatalf("packets %d + shed %d != %d records", res.Stats.Packets, res.Stats.Shed, len(recs))
	}
}

// TestStalledCollectorBlocksUnderShedBlock stalls the same pipeline
// under ShedBlock: backpressure must reach the sensor (acks stop short
// of the stream's end while the worker is parked) and resolve without a
// single dropped packet once the consumer recovers.
func TestStalledCollectorBlocksUnderShedBlock(t *testing.T) {
	sink := newBlockSink()
	in, err := ingest.New(backpressureCfg(ingest.ShedBlock, sink))
	if err != nil {
		t.Fatal(err)
	}
	col, err := Listen("127.0.0.1:0", CollectorConfig{Ingest: in, Token: "tok"})
	if err != nil {
		t.Fatal(err)
	}
	recs := backpressureRecords(8)
	type result struct {
		rep ShipReport
		err error
	}
	done := make(chan result, 1)
	go func() {
		rep, err := Ship(SensorConfig{
			Addr:         col.Addr().String(),
			Sensor:       7,
			Token:        "tok",
			Feed:         NewSliceFeed(recs),
			BatchRecords: 1,
			Heartbeat:    2 * time.Second, // patient: the block is the point
		})
		done <- result{rep, err}
	}()

	<-sink.entered // the worker is parked in the sink
	time.Sleep(150 * time.Millisecond)
	if off := col.Offsets()[7]; off >= uint64(len(recs)) {
		t.Fatalf("collector acked everything (%d) while its worker was parked — no backpressure", off)
	}
	select {
	case r := <-done:
		t.Fatalf("ship returned mid-stall: %+v, %v", r.rep, r.err)
	default:
	}

	close(sink.release)
	r := <-done
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.rep.Acked != uint64(len(recs)) {
		t.Fatalf("acked %d of %d after release", r.rep.Acked, len(recs))
	}
	col.Close()
	res, err := in.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Shed != 0 {
		t.Fatalf("ShedBlock dropped %d packets", res.Stats.Shed)
	}
	if res.Stats.Packets != uint64(len(recs)) {
		t.Fatalf("packets %d, want %d", res.Stats.Packets, len(recs))
	}
}
