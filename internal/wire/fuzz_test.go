package wire

import (
	"bytes"
	"io"
	"net/netip"
	"testing"
	"time"

	"booters/internal/ingest"
	"booters/internal/spool"
)

// fuzzSeedFrames builds a corpus of valid frames of every type, so the
// fuzzer starts from structure rather than noise.
func fuzzSeedFrames(tb testing.TB) [][]byte {
	tb.Helper()
	hello, err := AppendHello(nil, Hello{Version: ProtocolVersion, Sensor: 9, Token: []byte("seed-token")})
	if err != nil {
		tb.Fatal(err)
	}
	batch := AppendBatchHeader(nil, BatchHeader{Base: 17, Count: 2, TraceID: 5, SpanID: 5, SendUnixNanos: 1538352000e9}, ProtocolVersion)
	for i := 0; i < 2; i++ {
		batch, err = spool.AppendRecord(batch, ingest.Datagram{
			Time:    time.Unix(1538352000+int64(i), 0).UTC(),
			Victim:  netip.MustParseAddr("192.0.2.7"),
			Port:    123,
			Sensor:  9,
			Payload: []byte{0x17, 0x00, 0x03, 0x2a},
		})
		if err != nil {
			tb.Fatal(err)
		}
	}
	payloads := map[FrameType][]byte{
		FrameHello:     hello,
		FrameWelcome:   AppendWelcome(nil, Welcome{Version: ProtocolVersion, Resume: 1 << 33}),
		FrameBatch:     batch,
		FrameAck:       AppendAck(nil, Ack{Offset: 99}),
		FrameHeartbeat: AppendHeartbeat(nil, Heartbeat{Mark: 1538352000e9}),
		FrameGoodbye:   AppendGoodbye(nil, Goodbye{Final: 19}),
		FrameReject:    AppendReject(nil, Reject{Code: CodeGap, Msg: "gap"}),
	}
	var out [][]byte
	for _, ft := range frameTypes {
		b, err := AppendFrame(nil, ft, payloads[ft])
		if err != nil {
			tb.Fatal(err)
		}
		out = append(out, b)
	}
	// A multi-frame stream, so the fuzzer mutates frame boundaries too.
	var stream []byte
	for _, b := range out {
		stream = append(stream, b...)
	}
	out = append(out, stream)
	return out
}

// decodeTyped runs the matching message decoder over a frame payload,
// exercising every field-level bound the way a session would.
func decodeTyped(t FrameType, p []byte) {
	switch t {
	case FrameHello:
		DecodeHello(p)
	case FrameWelcome:
		DecodeWelcome(p)
	case FrameBatch:
		// Decode at both header layouts — a mutated stream is as likely
		// to land on a v1 session as a v2 one.
		for _, ver := range []uint16{1, 2} {
			if h, rest, err := DecodeBatchHeader(p, ver); err == nil {
				DecodeBatchRecords(h, rest, func(uint32, ingest.Datagram) error { return nil })
			}
		}
	case FrameAck:
		DecodeAck(p)
	case FrameHeartbeat:
		DecodeHeartbeat(p)
	case FrameGoodbye:
		DecodeGoodbye(p)
	case FrameReject:
		DecodeReject(p)
	}
}

// FuzzFrameDecode feeds arbitrary byte streams through the frame reader
// and the typed decoders. The invariant is total: any input either
// decodes or errors — no panics, no over-allocation from hostile length
// prefixes (the reader bounds every declared length before reading it).
func FuzzFrameDecode(f *testing.F) {
	for _, seed := range fuzzSeedFrames(f) {
		f.Add(seed)
		// Truncations and bit flips of valid frames are the interesting
		// hostile neighbourhood; seed a few directly.
		if len(seed) > 3 {
			f.Add(seed[:len(seed)/2])
			flipped := append([]byte(nil), seed...)
			flipped[1] ^= 0x80
			flipped[len(flipped)-1] ^= 0x01
			f.Add(flipped)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 3, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bytes.NewReader(data))
		for {
			ft, p, err := fr.Next()
			if err != nil {
				if err != io.EOF && fr.Bytes() > uint64(len(data)) {
					t.Fatalf("reader claims %d bytes from a %d-byte input", fr.Bytes(), len(data))
				}
				return
			}
			decodeTyped(ft, p)
		}
	})
}

// FuzzHandshake hammers the handshake-message decoders directly (no
// framing), plus the re-encode property: anything DecodeHello accepts
// must round-trip through AppendHello byte-identically — the decoder
// accepts nothing the encoder cannot produce.
func FuzzHandshake(f *testing.F) {
	good, err := AppendHello(nil, Hello{Version: ProtocolVersion, Sensor: 3, Token: []byte("fuzz")})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)-2])
	f.Add([]byte(Magic))
	f.Add(AppendWelcome(nil, Welcome{Version: 1, Resume: 7}))
	f.Add(AppendReject(nil, Reject{Code: CodeAuth, Msg: "bad token"}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if h, err := DecodeHello(data); err == nil {
			re, err := AppendHello(nil, h)
			if err != nil {
				t.Fatalf("accepted hello does not re-encode: %v", err)
			}
			if !bytes.Equal(re, data) {
				t.Fatalf("hello round-trip diverged:\n in %x\nout %x", data, re)
			}
		}
		DecodeWelcome(data)
		DecodeAck(data)
		DecodeHeartbeat(data)
		DecodeGoodbye(data)
		DecodeReject(data)
		for _, ver := range []uint16{1, 2} {
			if h, rest, err := DecodeBatchHeader(data, ver); err == nil {
				DecodeBatchRecords(h, rest, func(uint32, ingest.Datagram) error { return nil })
			}
		}
	})
}
