package wire

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"booters/internal/honeypot"
	"booters/internal/ingest"
	"booters/internal/obs"
	"booters/internal/obs/trace"
)

var testStart = time.Date(2018, time.October, 1, 0, 0, 0, 0, time.UTC)

// testPackets generates the market-driven synthetic stream the rest of
// the repo's equivalence tests use.
func testPackets(t testing.TB, weeks int, attacksPerWeek float64) []honeypot.Packet {
	t.Helper()
	packets, err := ingest.SyntheticStream(ingest.StreamConfig{
		Seed:           21,
		Start:          testStart,
		Weeks:          weeks,
		Sensors:        6,
		AttacksPerWeek: attacksPerWeek,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(packets) == 0 {
		t.Fatal("synthetic stream is empty")
	}
	return packets
}

// testCfg mirrors the ingest test configuration: small batches and
// frequent watermarks so short streams exercise the machinery.
func testCfg(shards, weeks int, unordered bool) ingest.Config {
	return ingest.Config{
		Shards:         shards,
		Start:          testStart,
		End:            testStart.AddDate(0, 0, 7*weeks-1),
		BatchSize:      32,
		WatermarkEvery: 128,
		Unordered:      unordered,
	}
}

// comparePanels asserts two results are byte-identical: same stats,
// same weekly series everywhere.
func comparePanels(t *testing.T, want, got *ingest.Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Stats, want.Stats) {
		t.Errorf("stats: got %+v want %+v", got.Stats, want.Stats)
	}
	if !reflect.DeepEqual(got.Global.Values, want.Global.Values) {
		t.Errorf("global series diverged")
	}
	if len(got.ByCountry) != len(want.ByCountry) {
		t.Errorf("countries: got %d want %d", len(got.ByCountry), len(want.ByCountry))
	}
	for c, ws := range want.ByCountry {
		g := got.ByCountry[c]
		if g == nil || !reflect.DeepEqual(g.Values, ws.Values) {
			t.Errorf("country %s series diverged", c)
		}
	}
	for p, ws := range want.ByProtocol {
		g := got.ByProtocol[p]
		if g == nil || !reflect.DeepEqual(g.Values, ws.Values) {
			t.Errorf("protocol %v series diverged", p)
		}
	}
	for c, cp := range want.CountryProtocol {
		for p, ws := range cp {
			g := got.CountryProtocol[c][p]
			if g == nil || !reflect.DeepEqual(g.Values, ws.Values) {
				t.Errorf("country %s protocol %v series diverged", c, p)
			}
		}
	}
}

// TestSensorCollectorPanelEquivalence is the tentpole guarantee: a
// synthetic stream shipped over loopback TCP through a sensor session
// into a rolling ingest pipeline yields a final panel byte-identical to
// the in-memory batch fold, ordered and unordered, at 1 and 4 shards.
func TestSensorCollectorPanelEquivalence(t *testing.T) {
	packets := testPackets(t, 3, 90)
	recs := ingest.Datagrams(packets)
	want, err := ingest.Batch(testCfg(1, 3, false), packets)
	if err != nil {
		t.Fatal(err)
	}
	if want.Stats.Attacks == 0 || want.Stats.Scans == 0 {
		t.Fatalf("degenerate batch reference: %+v", want.Stats)
	}
	for _, shards := range []int{1, 4} {
		for _, unordered := range []bool{false, true} {
			t.Run(fmt.Sprintf("shards=%d/unordered=%v", shards, unordered), func(t *testing.T) {
				cfg := testCfg(shards, 3, unordered)
				cfg.Rolling = true
				in, err := ingest.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				reg := obs.NewRegistry()
				col, err := Listen("127.0.0.1:0", CollectorConfig{
					Ingest:  in,
					Token:   "s3cret",
					Metrics: reg,
				})
				if err != nil {
					t.Fatal(err)
				}
				rep, err := Ship(SensorConfig{
					Addr:         col.Addr().String(),
					Sensor:       42,
					Token:        "s3cret",
					Feed:         NewSliceFeed(recs),
					BatchRecords: 64,
					Metrics:      reg,
				})
				if err != nil {
					t.Fatal(err)
				}
				if rep.Acked != uint64(len(recs)) {
					t.Fatalf("acked %d of %d records", rep.Acked, len(recs))
				}
				if got := col.Offsets()[42]; got != uint64(len(recs)) {
					t.Fatalf("collector offset %d, want %d", got, len(recs))
				}
				col.Close()
				got, err := in.Close()
				if err != nil {
					t.Fatal(err)
				}
				comparePanels(t, want, got)
				// The pipeline saw each record exactly once.
				if fresh, ok := reg.Sum("booters_wire_records_total"); !ok || fresh != float64(len(recs)) {
					t.Fatalf("records_total = %v (ok=%v), want %d", fresh, ok, len(recs))
				}
				// The rolling path actually emitted: a final snapshot
				// exists and matches the batch global series.
				snap := in.Snapshot()
				if snap == nil || !snap.Final {
					t.Fatalf("no final rolling snapshot")
				}
			})
		}
	}
}

// TestWireTraceSpanChainIntegrity is the cross-process tracing property
// test: with one tracer shared across sensor, collector and pipeline
// (the loopback stand-in for per-process tracers) and SampleEvery=1,
// every recorded span's parent must exist under the same trace, and at
// least one complete sensor.batch → wire.batch → ingest.enqueue →
// ingest.apply → week.seal → snapshot.publish chain must be
// recoverable by walking Parent links.
func TestWireTraceSpanChainIntegrity(t *testing.T) {
	packets := testPackets(t, 2, 60)
	recs := ingest.Datagrams(packets)
	tr := trace.New(trace.Config{SampleEvery: 1, RingSize: 1 << 14, SlowThreshold: -1})
	cfg := testCfg(2, 2, true)
	cfg.Rolling = true
	cfg.Trace = tr
	in, err := ingest.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	col, err := Listen("127.0.0.1:0", CollectorConfig{Ingest: in, Token: "trace", Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Ship(SensorConfig{
		Addr:         col.Addr().String(),
		Sensor:       42,
		Token:        "trace",
		Feed:         NewSliceFeed(recs),
		BatchRecords: 32,
		Trace:        tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Acked != uint64(len(recs)) {
		t.Fatalf("acked %d of %d records", rep.Acked, len(recs))
	}
	col.Close()
	if _, err := in.Close(); err != nil {
		t.Fatal(err)
	}

	if d := tr.Drops(); d != 0 {
		t.Fatalf("%d spans dropped; ring sized to hold everything", d)
	}
	spans := tr.Snapshot()
	byID := make(map[uint64]trace.Span, len(spans))
	for _, s := range spans {
		byID[s.ID] = s
	}
	for _, s := range spans {
		if s.Parent == 0 {
			continue
		}
		p, ok := byID[s.Parent]
		if !ok {
			t.Fatalf("span %s (trace %x) references missing parent %x", s.Name, s.Trace, s.Parent)
		}
		if p.Trace != s.Trace {
			t.Fatalf("span %s in trace %x has parent %s in trace %x", s.Name, s.Trace, p.Name, p.Trace)
		}
	}
	want := []string{"snapshot.publish", "week.seal", "ingest.apply", "ingest.enqueue", "wire.batch", "sensor.batch"}
	seen := map[string]bool{}
	found := false
	for _, s := range spans {
		seen[s.Name] = true
		if s.Name != want[0] {
			continue
		}
		var chain []string
		for cur, ok := s, true; ok; cur, ok = byID[cur.Parent] {
			chain = append(chain, cur.Name)
			if cur.Parent == 0 {
				break
			}
		}
		if reflect.DeepEqual(chain, want) {
			found = true
			break
		}
	}
	for _, name := range want {
		if !seen[name] {
			t.Errorf("no %s span recorded", name)
		}
	}
	if !found {
		t.Fatalf("no complete sensor→snapshot span chain recovered from %d spans", len(spans))
	}
}

// TestSensorCollectorMultiSensor runs three concurrent sensors into one
// unordered pipeline and checks the merged panel against the batch fold
// — the paper's multi-vantage collection in miniature.
func TestSensorCollectorMultiSensor(t *testing.T) {
	packets := testPackets(t, 2, 60)
	want, err := ingest.Batch(testCfg(1, 2, false), packets)
	if err != nil {
		t.Fatal(err)
	}
	// Split the stream by sensor ID so each wire sensor ships its own
	// time-ordered slice, like a real fleet would.
	recs := ingest.Datagrams(packets)
	bySensor := map[uint32][]ingest.Datagram{}
	for _, d := range recs {
		bySensor[uint32(d.Sensor)] = append(bySensor[uint32(d.Sensor)], d)
	}
	if len(bySensor) < 2 {
		t.Fatalf("stream uses %d sensors, need several", len(bySensor))
	}
	in, err := ingest.New(testCfg(4, 2, true))
	if err != nil {
		t.Fatal(err)
	}
	col, err := Listen("127.0.0.1:0", CollectorConfig{Ingest: in, Token: "fleet"})
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, len(bySensor))
	for id, feed := range bySensor {
		go func(id uint32, feed []ingest.Datagram) {
			rep, err := Ship(SensorConfig{
				Addr:         col.Addr().String(),
				Sensor:       id,
				Token:        "fleet",
				Feed:         NewSliceFeed(feed),
				BatchRecords: 32,
			})
			if err == nil && rep.Acked != uint64(len(feed)) {
				err = fmt.Errorf("sensor %d acked %d of %d", id, rep.Acked, len(feed))
			}
			errc <- err
		}(id, feed)
	}
	for range bySensor {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	col.Close()
	got, err := in.Close()
	if err != nil {
		t.Fatal(err)
	}
	comparePanels(t, want, got)
}
