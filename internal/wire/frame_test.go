package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"booters/internal/ingest"
	"booters/internal/spool"
)

// samplePayload builds a deterministic payload of n bytes.
func samplePayload(n int) []byte {
	rng := rand.New(rand.NewSource(int64(n) + 1))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestFrameRoundTrip(t *testing.T) {
	var stream []byte
	var want []struct {
		t FrameType
		p []byte
	}
	for i, ft := range frameTypes {
		p := samplePayload(1 + i*37)
		b, err := AppendFrame(stream, ft, p)
		if err != nil {
			t.Fatal(err)
		}
		stream = b
		want = append(want, struct {
			t FrameType
			p []byte
		}{ft, p})
	}
	fr := NewFrameReader(bytes.NewReader(stream))
	for i, w := range want {
		ft, p, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if ft != w.t || !bytes.Equal(p, w.p) {
			t.Fatalf("frame %d: got %v/%d bytes, want %v/%d", i, ft, len(p), w.t, len(w.p))
		}
	}
	if _, _, err := fr.Next(); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
	if fr.Bytes() != uint64(len(stream)) {
		t.Fatalf("Bytes() = %d, stream is %d", fr.Bytes(), len(stream))
	}
}

func TestFrameTruncation(t *testing.T) {
	frame, err := AppendFrame(nil, FrameHello, samplePayload(40))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(frame); cut++ {
		fr := NewFrameReader(bytes.NewReader(frame[:cut]))
		if _, _, err := fr.Next(); !errors.Is(err, ErrProtocol) {
			t.Fatalf("cut at %d: %v, want ErrProtocol", cut, err)
		}
	}
	// Zero bytes is a clean stream end, not corruption.
	fr := NewFrameReader(bytes.NewReader(nil))
	if _, _, err := fr.Next(); err != io.EOF {
		t.Fatalf("empty stream: %v, want io.EOF", err)
	}
}

// TestFrameBitFlips flips every header byte except the type byte (a
// type flip can land on another valid type, which framing alone cannot
// catch) and every payload byte, expecting an error each time — never a
// panic, never a silently wrong payload.
func TestFrameBitFlips(t *testing.T) {
	frame, err := AppendFrame(nil, FrameAck, samplePayload(64))
	if err != nil {
		t.Fatal(err)
	}
	for i := range frame {
		if i == 4 {
			continue // the type byte
		}
		mut := append([]byte(nil), frame...)
		mut[i] ^= 0x40
		fr := NewFrameReader(bytes.NewReader(mut))
		if _, _, err := fr.Next(); err == nil {
			t.Fatalf("flip at byte %d decoded cleanly", i)
		}
	}
}

func TestFrameHostileLength(t *testing.T) {
	// A declared length past the type's cap must fail before any
	// payload-sized allocation.
	for _, tc := range []struct {
		t    FrameType
		plen uint32
	}{
		{FrameHello, MaxControlPayload + 1},
		{FrameBatch, MaxBatchPayload + 1},
		{FrameBatch, 0xFFFFFFFF},
	} {
		var hdr [FrameHeaderSize]byte
		binary.BigEndian.PutUint32(hdr[0:4], tc.plen)
		hdr[4] = uint8(tc.t)
		fr := NewFrameReader(bytes.NewReader(hdr[:]))
		if _, _, err := fr.Next(); !errors.Is(err, ErrProtocol) {
			t.Fatalf("%v len %d: %v, want ErrProtocol", tc.t, tc.plen, err)
		}
	}
	// Unknown type, same story.
	var hdr [FrameHeaderSize]byte
	hdr[4] = 200
	fr := NewFrameReader(bytes.NewReader(hdr[:]))
	if _, _, err := fr.Next(); !errors.Is(err, ErrProtocol) {
		t.Fatalf("unknown type: %v, want ErrProtocol", err)
	}
}

func TestAppendFrameRefusesOversize(t *testing.T) {
	if _, err := AppendFrame(nil, FrameAck, samplePayload(MaxControlPayload+1)); !errors.Is(err, ErrProtocol) {
		t.Fatalf("oversize control: %v", err)
	}
	if _, err := AppendFrame(nil, FrameType(99), nil); !errors.Is(err, ErrProtocol) {
		t.Fatalf("unknown type: %v", err)
	}
}

func TestMessageRoundTrips(t *testing.T) {
	h := Hello{Version: ProtocolVersion, Sensor: 77, Token: []byte("tok-123")}
	hb, err := AppendHello(nil, h)
	if err != nil {
		t.Fatal(err)
	}
	gotH, err := DecodeHello(hb)
	if err != nil {
		t.Fatal(err)
	}
	if gotH.Version != h.Version || gotH.Sensor != h.Sensor || !bytes.Equal(gotH.Token, h.Token) {
		t.Fatalf("hello: got %+v want %+v", gotH, h)
	}

	w := Welcome{Version: 1, Resume: 1 << 40}
	if got, err := DecodeWelcome(AppendWelcome(nil, w)); err != nil || got != w {
		t.Fatalf("welcome: %+v, %v", got, err)
	}
	a := Ack{Offset: 123456789}
	if got, err := DecodeAck(AppendAck(nil, a)); err != nil || got != a {
		t.Fatalf("ack: %+v, %v", got, err)
	}
	hbt := Heartbeat{Mark: time.Now().UnixNano()}
	if got, err := DecodeHeartbeat(AppendHeartbeat(nil, hbt)); err != nil || got != hbt {
		t.Fatalf("heartbeat: %+v, %v", got, err)
	}
	g := Goodbye{Final: 42}
	if got, err := DecodeGoodbye(AppendGoodbye(nil, g)); err != nil || got != g {
		t.Fatalf("goodbye: %+v, %v", got, err)
	}
	r := Reject{Code: CodeGap, Msg: "batch base 9 but acknowledged offset is 3"}
	if got, err := DecodeReject(AppendReject(nil, r)); err != nil || got != r {
		t.Fatalf("reject: %+v, %v", got, err)
	}
}

func TestDecodeHelloRejectsHostileInput(t *testing.T) {
	good, err := AppendHello(nil, Hello{Version: 1, Sensor: 1, Token: []byte("t")})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":     nil,
		"short":     good[:10],
		"bad magic": append([]byte("NOTMAGIC"), good[8:]...),
		"token lies": func() []byte {
			b := append([]byte(nil), good...)
			binary.BigEndian.PutUint16(b[14:16], 500) // claims more than present
			return b
		}(),
		"trailing junk": append(append([]byte(nil), good...), 0xFF),
	}
	for name, b := range cases {
		if _, err := DecodeHello(b); !errors.Is(err, ErrProtocol) {
			t.Errorf("%s: %v, want ErrProtocol", name, err)
		}
	}
}

func TestBatchRoundTrip(t *testing.T) {
	recs := []ingest.Datagram{
		{Time: time.Unix(0, 5e9).UTC(), Victim: netip.MustParseAddr("10.1.2.3"), Port: 123, Sensor: 7, Payload: []byte{0x17, 0, 3, 0x2a}},
		{Time: time.Unix(0, 6e9).UTC(), Victim: netip.MustParseAddr("2001:db8::1"), Port: 53, Sensor: 8, Payload: samplePayload(90)},
	}
	payload := AppendBatchHeader(nil, BatchHeader{
		Base: 1000, Count: uint32(len(recs)),
		TraceID: 0xfeed, SpanID: 0xbeef, SendUnixNanos: 7e9,
	}, ProtocolVersion)
	for _, d := range recs {
		var err error
		if payload, err = spool.AppendRecord(payload, d); err != nil {
			t.Fatal(err)
		}
	}
	h, rest, err := DecodeBatchHeader(payload, ProtocolVersion)
	if err != nil {
		t.Fatal(err)
	}
	if h.Base != 1000 || h.Count != 2 || h.TraceID != 0xfeed || h.SpanID != 0xbeef || h.SendUnixNanos != 7e9 {
		t.Fatalf("header: %+v", h)
	}
	var got []ingest.Datagram
	err = DecodeBatchRecords(h, rest, func(i uint32, d ingest.Datagram) error {
		d.Payload = append([]byte(nil), d.Payload...)
		got = append(got, d)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		w, g := recs[i], got[i]
		if !w.Time.Equal(g.Time) || w.Victim != g.Victim || w.Port != g.Port || w.Sensor != g.Sensor || !bytes.Equal(w.Payload, g.Payload) {
			t.Fatalf("record %d: got %+v want %+v", i, g, w)
		}
	}

	// A count that exceeds the bytes present must fail, as must bytes
	// beyond the declared count.
	h2 := BatchHeader{Base: 0, Count: 3}
	if err := DecodeBatchRecords(h2, rest, nil); !errors.Is(err, ErrProtocol) {
		t.Fatalf("short records: %v", err)
	}
	h3 := BatchHeader{Base: 0, Count: 1}
	if err := DecodeBatchRecords(h3, rest, nil); !errors.Is(err, ErrProtocol) {
		t.Fatalf("trailing records: %v", err)
	}
}

func TestBatchHeaderV1Layout(t *testing.T) {
	// A v1 session encodes the 12-byte header and drops the trace
	// fields; decoding at v1 must neither read past the header nor
	// invent trace context.
	b := AppendBatchHeader(nil, BatchHeader{Base: 9, Count: 4, TraceID: 1, SpanID: 2, SendUnixNanos: 3}, 1)
	if len(b) != 12 {
		t.Fatalf("v1 header is %d bytes, want 12", len(b))
	}
	h, rest, err := DecodeBatchHeader(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if h.Base != 9 || h.Count != 4 || h.TraceID != 0 || h.SpanID != 0 || h.SendUnixNanos != 0 {
		t.Fatalf("v1 decode: %+v", h)
	}
	if len(rest) != 0 {
		t.Fatalf("v1 decode left %d bytes", len(rest))
	}
	// A v2 decoder refuses a bare v1 header — the session version gates
	// the layout, so this only happens to corrupt streams.
	if _, _, err := DecodeBatchHeader(b, 2); err == nil {
		t.Fatal("v2 decode accepted a 12-byte header")
	}
}

func TestRejectErrorPermanence(t *testing.T) {
	for code, want := range map[uint16]bool{
		CodeAuth:     true,
		CodeVersion:  true,
		CodeBadFrame: false,
		CodeGap:      false,
		CodeKicked:   false,
		CodeShutdown: false,
	} {
		e := &RejectError{Code: code}
		if e.Permanent() != want {
			t.Errorf("code %s: Permanent() = %v, want %v", codeName(code), e.Permanent(), want)
		}
	}
}
