package wire

import (
	"errors"
	"net"
	"net/netip"
	"strconv"
	"strings"
	"testing"
	"time"

	"booters/internal/ingest"
	"booters/internal/obs"
	"booters/internal/spool"
)

// rawClient drives the protocol frame by frame, for tests that need to
// misbehave in ways Ship never would.
type rawClient struct {
	t    *testing.T
	conn net.Conn
	fr   *FrameReader
}

func dialRaw(t *testing.T, addr string) *rawClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &rawClient{t: t, conn: conn, fr: NewFrameReader(conn)}
}

func (c *rawClient) send(ft FrameType, payload []byte) {
	c.t.Helper()
	b, err := AppendFrame(nil, ft, payload)
	if err != nil {
		c.t.Fatal(err)
	}
	if _, err := c.conn.Write(b); err != nil {
		c.t.Fatal(err)
	}
}

func (c *rawClient) recv() (FrameType, []byte, error) {
	c.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	return c.fr.Next()
}

// hello performs the client half of the handshake and returns the
// Welcome, failing the test on a reject.
func (c *rawClient) hello(sensor uint32, token string) Welcome {
	c.t.Helper()
	hb, err := AppendHello(nil, Hello{Version: ProtocolVersion, Sensor: sensor, Token: []byte(token)})
	if err != nil {
		c.t.Fatal(err)
	}
	c.send(FrameHello, hb)
	ft, p, err := c.recv()
	if err != nil {
		c.t.Fatal(err)
	}
	if ft != FrameWelcome {
		c.t.Fatalf("handshake answered with %v", ft)
	}
	w, err := DecodeWelcome(p)
	if err != nil {
		c.t.Fatal(err)
	}
	return w
}

// expectReject reads one frame and asserts it is a Reject with code.
func (c *rawClient) expectReject(code uint16) {
	c.t.Helper()
	ft, p, err := c.recv()
	if err != nil {
		c.t.Fatalf("expected reject %s, read failed: %v", codeName(code), err)
	}
	if ft != FrameReject {
		c.t.Fatalf("expected reject, got %v", ft)
	}
	r, err := DecodeReject(p)
	if err != nil {
		c.t.Fatal(err)
	}
	if r.Code != code {
		c.t.Fatalf("reject code %s, want %s (%s)", codeName(r.Code), codeName(code), r.Msg)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// newTestCollector builds an unordered single-shard pipeline and a
// collector on loopback, cleaned up with the test.
func newTestCollector(t *testing.T, cc CollectorConfig) (*ingest.Ingestor, *Collector) {
	t.Helper()
	cfg := testCfg(1, 2, true)
	cfg.Metrics = cc.Metrics
	in, err := ingest.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cc.Ingest = in
	col, err := Listen("127.0.0.1:0", cc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		col.Close()
		in.Close()
	})
	return in, col
}

func TestHandshakeRejectsBadToken(t *testing.T) {
	reg := obs.NewRegistry()
	_, col := newTestCollector(t, CollectorConfig{Token: "right", Metrics: reg})

	rep, err := Ship(SensorConfig{
		Addr:   col.Addr().String(),
		Sensor: 1,
		Token:  "wrong",
		Feed:   NewSliceFeed(nil),
	})
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Code != CodeAuth {
		t.Fatalf("err = %v, want CodeAuth reject", err)
	}
	if rep.Dials != 1 {
		t.Fatalf("made %d dials for a permanent reject, want 1", rep.Dials)
	}
	if n, _ := reg.Sum("booters_wire_auth_failures_total"); n != 1 {
		t.Fatalf("auth_failures_total = %v, want 1", n)
	}
}

func TestHandshakeRejectsVersionAndGarbage(t *testing.T) {
	_, col := newTestCollector(t, CollectorConfig{Token: "tok"})

	c := dialRaw(t, col.Addr().String())
	hb, err := AppendHello(nil, Hello{Version: 99, Sensor: 1, Token: []byte("tok")})
	if err != nil {
		t.Fatal(err)
	}
	c.send(FrameHello, hb)
	c.expectReject(CodeVersion)

	// A first frame that is not a Hello at all.
	c2 := dialRaw(t, col.Addr().String())
	c2.send(FrameAck, AppendAck(nil, Ack{Offset: 1}))
	c2.expectReject(CodeBadFrame)
}

func TestBatchGapRejected(t *testing.T) {
	_, col := newTestCollector(t, CollectorConfig{Token: "tok"})
	c := dialRaw(t, col.Addr().String())
	w := c.hello(3, "tok")
	if w.Resume != 0 {
		t.Fatalf("fresh sensor welcomed at %d", w.Resume)
	}
	// A batch whose base skips past the acknowledged offset loses data
	// the collector never saw; the protocol refuses it outright.
	c.send(FrameBatch, AppendBatchHeader(nil, BatchHeader{Base: 5, Count: 0}, ProtocolVersion))
	c.expectReject(CodeGap)
}

func TestVersionNegotiation(t *testing.T) {
	_, col := newTestCollector(t, CollectorConfig{Token: "tok"})

	// A v1 sensor is welcomed at its own version and ships the 12-byte
	// batch header layout for the whole session.
	c := dialRaw(t, col.Addr().String())
	hb, err := AppendHello(nil, Hello{Version: 1, Sensor: 4, Token: []byte("tok")})
	if err != nil {
		t.Fatal(err)
	}
	c.send(FrameHello, hb)
	ft, p, err := c.recv()
	if err != nil || ft != FrameWelcome {
		t.Fatalf("v1 hello answered with %v, %v", ft, err)
	}
	w, err := DecodeWelcome(p)
	if err != nil {
		t.Fatal(err)
	}
	if w.Version != 1 {
		t.Fatalf("welcome echoes version %d, want 1", w.Version)
	}
	payload := AppendBatchHeader(nil, BatchHeader{Base: 0, Count: 1}, 1)
	if payload, err = spool.AppendRecord(payload, ingest.Datagram{
		Time:    testStart.Add(time.Hour),
		Victim:  netip.MustParseAddr("192.0.2.9"),
		Port:    123,
		Sensor:  4,
		Payload: []byte{0x17, 0x00, 0x03, 0x2a},
	}); err != nil {
		t.Fatal(err)
	}
	c.send(FrameBatch, payload)
	ft, p, err = c.recv()
	if err != nil || ft != FrameAck {
		t.Fatalf("v1 batch answered with %v, %v", ft, err)
	}
	if a, err := DecodeAck(p); err != nil || a.Offset != 1 {
		t.Fatalf("v1 batch acked at %+v, %v", a, err)
	}

	// A version outside [MinProtocolVersion, ProtocolVersion] is
	// rejected permanently.
	c2 := dialRaw(t, col.Addr().String())
	hb2, err := AppendHello(nil, Hello{Version: ProtocolVersion + 1, Sensor: 5, Token: []byte("tok")})
	if err != nil {
		t.Fatal(err)
	}
	c2.send(FrameHello, hb2)
	c2.expectReject(CodeVersion)
}

func TestDuplicateSensorKicksOlderSession(t *testing.T) {
	_, col := newTestCollector(t, CollectorConfig{Token: "tok"})

	a := dialRaw(t, col.Addr().String())
	a.hello(9, "tok")
	waitFor(t, "first session", func() bool { return col.Sessions() == 1 })

	b := dialRaw(t, col.Addr().String())
	b.hello(9, "tok") // blocks until the collector has kicked a

	if _, _, err := a.recv(); err == nil {
		t.Fatal("kicked session still readable")
	}
	if n := col.Sessions(); n != 1 {
		t.Fatalf("%d sessions after kick, want 1", n)
	}
}

// TestReaperClosesSourceAndFreesWatermark is the dead-sensor story: a
// session that goes silent past the deadline is reaped, its ingest
// source closes, and the pipeline's low-watermark — which the silent
// sensor was holding back — jumps to the next constraint.
func TestReaperClosesSourceAndFreesWatermark(t *testing.T) {
	reg := obs.NewRegistry()
	in, col := newTestCollector(t, CollectorConfig{
		Token:     "tok",
		DeadAfter: 150 * time.Millisecond,
		Metrics:   reg,
	})

	// A second, healthy source far ahead in stream time: the low
	// watermark is pinned by whichever source lags.
	high := testStart.Add(10 * 24 * time.Hour)
	other := in.RegisterSource()
	other.Advance(high)
	defer other.Close()

	c := dialRaw(t, col.Addr().String())
	c.hello(5, "tok")

	// A heartbeat with an early stream-time promise drags the low
	// watermark down to this session.
	early := testStart.Add(24 * time.Hour)
	c.send(FrameHeartbeat, AppendHeartbeat(nil, Heartbeat{Mark: early.UnixNano()}))
	if ft, _, err := c.recv(); err != nil || ft != FrameAck {
		t.Fatalf("heartbeat answered with %v, %v", ft, err)
	}
	lowGauge := func() float64 {
		v, _ := reg.Sum("booters_ingest_watermark_low_seconds")
		return v
	}
	waitFor(t, "watermark at silent sensor", func() bool { return lowGauge() == float64(early.Unix()) })

	// Silence. The reaper must close the session and its source so the
	// healthy source's promise becomes the low watermark again.
	waitFor(t, "session reaped", func() bool { return col.Sessions() == 0 })
	waitFor(t, "watermark freed", func() bool { return lowGauge() == float64(high.Unix()) })
	if n, _ := reg.Sum("booters_wire_sessions_reaped_total"); n != 1 {
		t.Fatalf("sessions_reaped_total = %v, want 1", n)
	}
	// The offset survives the reap for a later resume.
	if off := col.Offsets()[5]; off != 0 {
		t.Fatalf("offset %d after reap, want 0", off)
	}
}

// TestHeartbeatKeepsIdleSessionAlive lingers a sensor well past the
// collector's dead-session deadline with nothing to ship; heartbeats
// alone must keep it open.
func TestHeartbeatKeepsIdleSessionAlive(t *testing.T) {
	reg := obs.NewRegistry()
	_, col := newTestCollector(t, CollectorConfig{
		Token:     "tok",
		DeadAfter: 200 * time.Millisecond,
		Metrics:   reg,
	})
	recs := ingest.Datagrams(testPackets(t, 1, 10))
	rep, err := Ship(SensorConfig{
		Addr:      col.Addr().String(),
		Sensor:    6,
		Token:     "tok",
		Feed:      NewSliceFeed(recs),
		Heartbeat: 50 * time.Millisecond,
		Linger:    700 * time.Millisecond,
		Metrics:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Acked != uint64(len(recs)) {
		t.Fatalf("acked %d of %d", rep.Acked, len(recs))
	}
	if rep.Dials != 1 {
		t.Fatalf("%d dials, want 1 (session must not be reaped mid-linger)", rep.Dials)
	}
	if n, _ := reg.Sum("booters_wire_sessions_reaped_total"); n != 0 {
		t.Fatalf("sessions_reaped_total = %v, want 0", n)
	}
	if hb := sampleValue(reg, `booters_wire_frames_total{dir="in",type="heartbeat"}`); hb < 1 {
		t.Fatalf("heartbeat frames = %v, want >= 1", hb)
	}
}

// sampleValue reads one sample from the registry's text exposition by
// its full name{labels} prefix, 0 if absent.
func sampleValue(reg *obs.Registry, prefix string) float64 {
	for _, line := range strings.Split(string(reg.AppendText(nil)), "\n") {
		if strings.HasPrefix(line, prefix+" ") {
			v, err := strconv.ParseFloat(strings.TrimSpace(line[len(prefix)+1:]), 64)
			if err == nil {
				return v
			}
		}
	}
	return 0
}
