package wire

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"path/filepath"
	"testing"
	"time"

	"booters/internal/ingest"
	"booters/internal/obs"
	"booters/internal/spool"
)

// flakyConn kills the connection after a byte budget is written,
// tearing the final write partway through so the collector sees a
// truncated frame — the worst-case mid-batch disconnect.
type flakyConn struct {
	net.Conn
	budget int64
}

// Write forwards until the budget runs out, then tears the connection.
func (c *flakyConn) Write(b []byte) (int, error) {
	if c.budget <= 0 {
		c.Conn.Close()
		return 0, errors.New("injected connection failure")
	}
	if int64(len(b)) > c.budget {
		n, _ := c.Conn.Write(b[:c.budget])
		c.budget = 0
		c.Conn.Close()
		return n, errors.New("injected connection failure")
	}
	c.budget -= int64(len(b))
	return c.Conn.Write(b)
}

// TestResumeAfterRandomDisconnects is the resume property test: kill
// the connection at random byte offsets mid-replay, N trials, and
// require that reconnect-with-resume delivers every spooled record to
// the pipeline exactly once — the final panel must equal the batch fold
// and the pipeline-boundary record counter must equal the spool's.
func TestResumeAfterRandomDisconnects(t *testing.T) {
	packets := testPackets(t, 2, 70)
	recs := ingest.Datagrams(packets)
	want, err := ingest.Batch(testCfg(1, 2, false), packets)
	if err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(t.TempDir(), "spool")
	w, err := spool.Create(dir, spool.Options{SegmentBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	var wireBytes int64
	for _, d := range recs {
		if err := w.Append(d); err != nil {
			t.Fatal(err)
		}
		wireBytes += spool.RecordHeaderSize + int64(len(d.Payload))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	const trials = 4
	totalResumes := 0
	for trial := 0; trial < trials; trial++ {
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial)*1337 + 11))
			in, err := ingest.New(testCfg(4, 2, true))
			if err != nil {
				t.Fatal(err)
			}
			reg := obs.NewRegistry()
			col, err := Listen("127.0.0.1:0", CollectorConfig{Ingest: in, Token: "tok", Metrics: reg})
			if err != nil {
				t.Fatal(err)
			}
			kills := 1 + rng.Intn(3)
			dials := 0
			dial := func() (net.Conn, error) {
				conn, err := net.Dial("tcp", col.Addr().String())
				if err != nil {
					return nil, err
				}
				dials++
				if dials <= kills {
					return &flakyConn{Conn: conn, budget: 10_000 + rng.Int63n(wireBytes*2/3)}, nil
				}
				return conn, nil
			}
			feed := NewSpoolFeed(dir)
			defer feed.Close()
			rep, err := Ship(SensorConfig{
				Addr:         col.Addr().String(),
				Sensor:       7,
				Token:        "tok",
				Feed:         feed,
				BatchRecords: 48,
				Heartbeat:    time.Second,
				Backoff:      2 * time.Millisecond,
				MaxAttempts:  12,
				Dial:         dial,
				Metrics:      reg,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Acked != uint64(len(recs)) {
				t.Fatalf("acked %d of %d records", rep.Acked, len(recs))
			}
			if off := col.Offsets()[7]; off != uint64(len(recs)) {
				t.Fatalf("collector offset %d, want %d", off, len(recs))
			}
			// Zero lost, zero duplicated at the pipeline boundary: the
			// fresh-record counter matches the spool exactly, whatever
			// was torn and resent on the wire.
			if fresh, ok := reg.Sum("booters_wire_records_total"); !ok || fresh != float64(len(recs)) {
				t.Fatalf("pipeline saw %v fresh records (ok=%v), want %d", fresh, ok, len(recs))
			}
			totalResumes += rep.Resumes
			col.Close()
			got, err := in.Close()
			if err != nil {
				t.Fatal(err)
			}
			comparePanels(t, want, got)
		})
	}
	if totalResumes == 0 {
		t.Fatalf("no trial exercised resume — kill budgets never bit")
	}
}
