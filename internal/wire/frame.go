// Package wire is the networked sensor front-end: a length-prefixed
// framed session protocol that carries batches of the spool record
// format from remote honeypot sensors to a central collector feeding
// internal/ingest. A session is a handshake (protocol version, sensor
// ID, token auth), a stream of batch frames acknowledged by cumulative
// record offsets, and periodic heartbeats; a sensor that loses its
// connection redials and resumes from the last acknowledged offset, so
// the pipeline sees every record exactly once. The collector registers
// one ingest low-watermark source per session, maps backpressure onto
// the pipeline's shed policies, and instruments both sides through
// internal/obs. The frame and message codecs never trust a length field
// before bounding it, never allocate more than a frame's documented cap,
// and are fuzzed (FuzzFrameDecode, FuzzHandshake). The normative spec
// lives in docs/WIRE_PROTOCOL.md.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// ErrProtocol is wrapped by every framing or message violation — bad
// magic, oversized payloads, checksum mismatches, fields that contradict
// the frame length. A session that sees it is unrecoverable and closes;
// transport errors (timeouts, resets) deliberately do not wrap it, so
// callers can tell "redial and resume" apart from "the peer is broken".
var ErrProtocol = errors.New("wire: protocol error")

// FrameType tags what a frame's payload means. Unknown types are a
// protocol error: the receiver cannot skip what it cannot bound.
type FrameType uint8

// Frame types. Hello through Goodbye follow the session's life in
// order; Reject can interrupt it at any point.
const (
	FrameHello     FrameType = 1 // sensor → collector: version, sensor ID, auth token
	FrameWelcome   FrameType = 2 // collector → sensor: accepted, resume offset
	FrameBatch     FrameType = 3 // sensor → collector: record batch at a base offset
	FrameAck       FrameType = 4 // collector → sensor: cumulative acknowledged offset
	FrameHeartbeat FrameType = 5 // sensor → collector: liveness + stream-time promise
	FrameGoodbye   FrameType = 6 // sensor → collector: clean end at a final offset
	FrameReject    FrameType = 7 // collector → sensor: terminal refusal with a code
)

// String names the frame type for logs and metric labels.
func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "hello"
	case FrameWelcome:
		return "welcome"
	case FrameBatch:
		return "batch"
	case FrameAck:
		return "ack"
	case FrameHeartbeat:
		return "heartbeat"
	case FrameGoodbye:
		return "goodbye"
	case FrameReject:
		return "reject"
	}
	return fmt.Sprintf("type%d", uint8(t))
}

// frameTypes lists every valid frame type, for metrics registration and
// fuzz corpora.
var frameTypes = []FrameType{
	FrameHello, FrameWelcome, FrameBatch, FrameAck,
	FrameHeartbeat, FrameGoodbye, FrameReject,
}

// FrameHeaderSize is the fixed frame prologue: payload length (u32),
// frame type (u8), CRC-32 (IEEE) of the payload (u32), all big-endian.
const FrameHeaderSize = 9

// MaxControlPayload caps every frame type except Batch. Control frames
// are a handful of fixed fields plus a short token or message; anything
// larger is hostile.
const MaxControlPayload = 1 << 10

// MaxBatchPayload caps a Batch frame's payload. It bounds both the
// receiver's allocation for one frame and the redelivery window after a
// torn connection.
const MaxBatchPayload = 1 << 20

// maxPayload returns the payload cap for a frame type, or 0 for an
// unknown type.
func maxPayload(t FrameType) int {
	switch t {
	case FrameBatch:
		return MaxBatchPayload
	case FrameHello, FrameWelcome, FrameAck, FrameHeartbeat, FrameGoodbye, FrameReject:
		return MaxControlPayload
	}
	return 0
}

// AppendFrame appends one framed payload to dst and returns the
// extended slice. It fails if the payload exceeds the type's cap, so an
// encoder bug surfaces at the sender rather than as a peer reject.
func AppendFrame(dst []byte, t FrameType, payload []byte) ([]byte, error) {
	max := maxPayload(t)
	if max == 0 {
		return dst, fmt.Errorf("%w: unknown frame type %d", ErrProtocol, uint8(t))
	}
	if len(payload) > max {
		return dst, fmt.Errorf("%w: %v payload %d bytes exceeds cap %d", ErrProtocol, t, len(payload), max)
	}
	var hdr [FrameHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	hdr[4] = uint8(t)
	binary.BigEndian.PutUint32(hdr[5:9], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	dst = append(dst, payload...)
	return dst, nil
}

// FrameReader decodes frames off a byte stream. The payload it returns
// aliases an internal buffer that the next call reuses — decode or copy
// before reading on. It is not safe for concurrent use.
type FrameReader struct {
	r   io.Reader
	buf []byte
	n   uint64
}

// NewFrameReader wraps a stream for frame decoding.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: r}
}

// Next reads one frame, returning its type and payload. The declared
// length is checked against the type's cap before any allocation, so a
// hostile length prefix can cost at most MaxBatchPayload. io.EOF means
// the stream ended cleanly between frames; mid-frame truncation and
// checksum mismatches wrap ErrProtocol.
func (fr *FrameReader) Next() (FrameType, []byte, error) {
	var hdr [FrameHeaderSize]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			return 0, nil, fmt.Errorf("%w: frame header cut off", ErrProtocol)
		}
		return 0, nil, err
	}
	fr.n += FrameHeaderSize
	plen := int(binary.BigEndian.Uint32(hdr[0:4]))
	t := FrameType(hdr[4])
	want := binary.BigEndian.Uint32(hdr[5:9])
	max := maxPayload(t)
	if max == 0 {
		return 0, nil, fmt.Errorf("%w: unknown frame type %d", ErrProtocol, hdr[4])
	}
	if plen > max {
		return 0, nil, fmt.Errorf("%w: %v payload claims %d bytes, cap is %d", ErrProtocol, t, plen, max)
	}
	if cap(fr.buf) < plen {
		fr.buf = make([]byte, plen)
	}
	p := fr.buf[:plen]
	if _, err := io.ReadFull(fr.r, p); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, nil, fmt.Errorf("%w: %v payload cut off", ErrProtocol, t)
		}
		return 0, nil, err
	}
	fr.n += uint64(plen)
	if crc32.ChecksumIEEE(p) != want {
		return 0, nil, fmt.Errorf("%w: %v payload checksum mismatch", ErrProtocol, t)
	}
	return t, p, nil
}

// Bytes returns the total bytes of complete header and payload reads so
// far, for metrics.
func (fr *FrameReader) Bytes() uint64 { return fr.n }
