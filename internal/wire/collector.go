package wire

import (
	"crypto/subtle"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"booters/internal/ingest"
	"booters/internal/obs"
	"booters/internal/obs/trace"
)

// DefaultDeadAfter is how long a collector waits between a session's
// frames before declaring the sensor dead and reaping the session.
const DefaultDeadAfter = 30 * time.Second

// CollectorConfig configures Listen.
type CollectorConfig struct {
	// Ingest is the pipeline every accepted record is fed to. Required.
	Ingest *ingest.Ingestor

	// Token is the shared secret sensors must present. Empty means
	// unauthenticated (loopback tests); a non-empty token is compared in
	// constant time.
	Token string

	// DeadAfter is the per-frame read deadline: a session that stays
	// silent this long — no batches, no heartbeats — is reaped, its
	// low-watermark source closed, its offset retained for resume.
	// Defaults to DefaultDeadAfter.
	DeadAfter time.Duration

	// Metrics, when non-nil, receives the booters_wire_* families.
	Metrics *obs.Registry

	// Trace, when non-nil, records wire.batch receive spans. Batches
	// whose v2 header carries a sampled sensor-side trace context are
	// recorded as children of it, stitching the cross-process
	// sensor→snapshot chain together; v1 batches make their own local
	// sampling decision. Nil disables tracing at one pointer test.
	Trace *trace.Tracer

	// Logf, when non-nil, receives one line per session event.
	Logf func(format string, args ...any)
}

// sensorState is what the collector remembers about a sensor across
// sessions: the cumulative acknowledged record offset and the stream
// time already promised to the pipeline. Only the sensor's single
// active session writes it (duplicate sessions are serialised by
// kicking); the fields are atomic so Offsets can read them live.
type sensorState struct {
	offset atomic.Uint64
	mark   atomic.Int64
	// opened is the wall clock (unix nanoseconds) at which the sensor's
	// current session passed handshake; the session-age gauge reads it
	// at scrape time.
	opened atomic.Int64
}

// session is one accepted connection's server half.
type session struct {
	conn net.Conn
	done chan struct{}
	wbuf []byte
}

// Collector accepts sensor sessions on a listener and feeds their
// records to one ingest pipeline. Create with Listen, stop with Close.
type Collector struct {
	cfg CollectorConfig
	ln  net.Listener
	m   *collectorMetrics
	wg  sync.WaitGroup

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	state  map[uint32]*sensorState
	active map[uint32]*session
}

// Listen starts a collector on addr (e.g. "127.0.0.1:0") and serves
// sessions until Close.
func Listen(addr string, cfg CollectorConfig) (*Collector, error) {
	if cfg.Ingest == nil {
		return nil, fmt.Errorf("wire: collector needs an ingest pipeline")
	}
	if cfg.DeadAfter <= 0 {
		cfg.DeadAfter = DefaultDeadAfter
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: %w", err)
	}
	c := &Collector{
		cfg:    cfg,
		ln:     ln,
		m:      newCollectorMetrics(cfg.Metrics),
		conns:  make(map[net.Conn]struct{}),
		state:  make(map[uint32]*sensorState),
		active: make(map[uint32]*session),
	}
	c.wg.Add(1)
	go c.serve()
	return c, nil
}

// Addr returns the listener's bound address, for "127.0.0.1:0" setups.
func (c *Collector) Addr() net.Addr { return c.ln.Addr() }

// Close stops accepting, closes every open session's connection and
// waits for their goroutines to drain. The ingest pipeline is the
// caller's to close; per-sensor offsets survive until the process ends.
func (c *Collector) Close() error {
	c.mu.Lock()
	already := c.closed
	c.closed = true
	for conn := range c.conns {
		conn.Close()
	}
	c.mu.Unlock()
	if !already {
		c.ln.Close()
	}
	c.wg.Wait()
	return nil
}

// Sessions returns the number of sessions currently past handshake.
func (c *Collector) Sessions() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.active)
}

// Offsets snapshots the cumulative acknowledged record offset of every
// sensor the collector has ever welcomed.
func (c *Collector) Offsets() map[uint32]uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[uint32]uint64, len(c.state))
	for id, st := range c.state {
		out[id] = st.offset.Load()
	}
	return out
}

// logf forwards to the configured logger, if any.
func (c *Collector) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// serve accepts connections until the listener closes.
func (c *Collector) serve() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			conn.Close()
			return
		}
		c.conns[conn] = struct{}{}
		c.wg.Add(1)
		c.mu.Unlock()
		go c.handle(conn)
	}
}

// handle runs one connection from handshake to teardown.
func (c *Collector) handle(conn net.Conn) {
	defer c.wg.Done()
	defer conn.Close()
	defer func() {
		c.mu.Lock()
		delete(c.conns, conn)
		c.mu.Unlock()
	}()

	s := &session{conn: conn, done: make(chan struct{})}
	fr := NewFrameReader(conn)

	// Handshake: the first frame must be a well-formed, authenticated
	// Hello at our protocol version.
	conn.SetReadDeadline(time.Now().Add(c.cfg.DeadAfter))
	t, p, err := fr.Next()
	if err != nil || t != FrameHello {
		c.m.authFailure()
		c.reject(s, CodeBadFrame, "expected hello")
		return
	}
	c.m.frameIn(t, int(fr.Bytes()))
	h, err := DecodeHello(p)
	if err != nil {
		c.m.authFailure()
		c.reject(s, CodeBadFrame, "malformed hello")
		return
	}
	if h.Version < MinProtocolVersion || h.Version > ProtocolVersion {
		c.m.authFailure()
		c.reject(s, CodeVersion, fmt.Sprintf("version %d unsupported, speak %d..%d", h.Version, MinProtocolVersion, ProtocolVersion))
		return
	}
	if subtle.ConstantTimeCompare([]byte(c.cfg.Token), h.Token) != 1 {
		c.m.authFailure()
		c.reject(s, CodeAuth, "bad token")
		return
	}

	// One active session per sensor: a newer connection kicks the older
	// one and waits for it to finish unwinding, so sensorState only ever
	// has one writer.
	var st *sensorState
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			c.reject(s, CodeShutdown, "collector closing")
			return
		}
		old := c.active[h.Sensor]
		if old == nil {
			st = c.state[h.Sensor]
			if st == nil {
				st = &sensorState{}
				st.mark.Store(MarkUnset)
				c.state[h.Sensor] = st
			}
			c.active[h.Sensor] = s
			c.mu.Unlock()
			break
		}
		c.mu.Unlock()
		c.logf("wire: sensor %d reconnected, kicking older session", h.Sensor)
		old.conn.Close()
		<-old.done
	}
	defer func() {
		c.mu.Lock()
		if c.active[h.Sensor] == s {
			delete(c.active, h.Sensor)
		}
		c.mu.Unlock()
		close(s.done)
	}()

	// The Welcome echoes the sensor's version: the whole session —
	// batch-header layout included — runs at the version the sensor
	// asked for, so v1 sensors keep working unchanged.
	resume := st.offset.Load()
	if err := c.write(s, FrameWelcome, AppendWelcome(nil, Welcome{Version: h.Version, Resume: resume})); err != nil {
		return
	}
	st.opened.Store(time.Now().UnixNano())
	c.m.sessionOpen(resume > 0)
	c.m.sessionGauges(h.Sensor, st)
	c.logf("wire: sensor %d session open at offset %d (resume=%v, v%d)", h.Sensor, resume, resume > 0, h.Version)

	// Each session is one low-watermark source; the stream time already
	// promised by earlier sessions carries over.
	src := c.cfg.Ingest.RegisterSource()
	defer src.Close()
	if m := st.mark.Load(); m != MarkUnset {
		src.Advance(time.Unix(0, m).UTC())
	}

	reaped := false
	defer func() { c.m.sessionClose(reaped) }()

	for {
		conn.SetReadDeadline(time.Now().Add(c.cfg.DeadAfter))
		before := fr.Bytes()
		t, p, err := fr.Next()
		if err != nil {
			var nerr net.Error
			switch {
			case errors.As(err, &nerr) && nerr.Timeout():
				reaped = true
				c.logf("wire: sensor %d silent for %v, reaping session at offset %d", h.Sensor, c.cfg.DeadAfter, st.offset.Load())
			case errors.Is(err, ErrProtocol):
				c.reject(s, CodeBadFrame, err.Error())
			case err == io.EOF:
				c.logf("wire: sensor %d hung up at offset %d", h.Sensor, st.offset.Load())
			}
			return
		}
		c.m.frameIn(t, int(fr.Bytes()-before))

		switch t {
		case FrameBatch:
			ok, err := c.ingestBatch(s, src, st, h.Sensor, h.Version, p)
			if err != nil || !ok {
				return
			}
		case FrameHeartbeat:
			hb, err := DecodeHeartbeat(p)
			if err != nil {
				c.reject(s, CodeBadFrame, err.Error())
				return
			}
			if hb.Mark != MarkUnset && hb.Mark > st.mark.Load() {
				st.mark.Store(hb.Mark)
				src.Advance(time.Unix(0, hb.Mark).UTC())
			}
			if err := c.write(s, FrameAck, AppendAck(nil, Ack{Offset: st.offset.Load()})); err != nil {
				return
			}
		case FrameGoodbye:
			g, err := DecodeGoodbye(p)
			if err != nil {
				c.reject(s, CodeBadFrame, err.Error())
				return
			}
			final := st.offset.Load()
			if g.Final != final {
				c.logf("wire: sensor %d goodbye at %d but acknowledged offset is %d", h.Sensor, g.Final, final)
			}
			c.write(s, FrameAck, AppendAck(nil, Ack{Offset: final}))
			c.logf("wire: sensor %d finished cleanly at offset %d", h.Sensor, final)
			return
		default:
			c.reject(s, CodeBadFrame, fmt.Sprintf("unexpected %v frame", t))
			return
		}
	}
}

// ingestBatch feeds one batch frame to the pipeline: overlap below the
// acknowledged offset is skipped (redelivery after a torn connection),
// a base beyond it is a gap the protocol forbids, and everything fresh
// is ingested before the offset advances and the ack goes out — the ack
// is the promise that these records are never needed again. Returns
// ok=false when the session must end.
func (c *Collector) ingestBatch(s *session, src *ingest.Source, st *sensorState, sensor uint32, version uint16, p []byte) (bool, error) {
	h, rest, err := DecodeBatchHeader(p, version)
	if err != nil {
		c.reject(s, CodeBadFrame, err.Error())
		return false, nil
	}
	// Receive span: a child of the sensor's batch span when the v2
	// header carries a sampled context, else a local sampling decision.
	// SetTraceParent before the records go in so the shard flushes this
	// batch causes are parented under the receive span.
	var wtc trace.Context
	var recvStart int64
	if tr := c.cfg.Trace; tr != nil {
		if h.TraceID != 0 {
			wtc = tr.Child(trace.Context{Trace: h.TraceID, Span: h.SpanID})
		} else {
			wtc = tr.Root()
		}
		if wtc.Sampled() {
			recvStart = time.Now().UnixNano()
			c.cfg.Ingest.SetTraceParent(wtc)
		}
	}
	offset := st.offset.Load()
	if h.Base > offset {
		c.reject(s, CodeGap, fmt.Sprintf("batch base %d but acknowledged offset is %d", h.Base, offset))
		return false, nil
	}
	skip := offset - h.Base
	maxT := int64(MarkUnset)
	err = DecodeBatchRecords(h, rest, func(i uint32, d ingest.Datagram) error {
		if uint64(i) < skip {
			return nil
		}
		if n := d.Time.UnixNano(); n > maxT {
			maxT = n
		}
		if err := c.cfg.Ingest.IngestDatagram(d); err != nil {
			if errors.Is(err, ingest.ErrClosed) {
				return err
			}
			// Undecodable datagrams (unknown port, malformed payload) are
			// counted by the pipeline's own stats and dropped, exactly as
			// they would be on a local replay.
		}
		return nil
	})
	switch {
	case err == nil:
	case errors.Is(err, ingest.ErrClosed):
		c.reject(s, CodeShutdown, "pipeline closed")
		return false, nil
	default:
		c.reject(s, CodeBadFrame, err.Error())
		return false, nil
	}
	var fresh, dup uint64
	if total := uint64(h.Count); total > skip {
		fresh, dup = total-skip, skip
		offset = h.Base + total
		st.offset.Store(offset)
	} else {
		fresh, dup = 0, total
	}
	if maxT != int64(MarkUnset) && maxT > st.mark.Load() {
		st.mark.Store(maxT)
		src.Advance(time.Unix(0, maxT).UTC())
	}
	if wtc.Sampled() {
		now := time.Now().UnixNano()
		c.cfg.Trace.Record(trace.NameWireBatch, int(sensor), wtc, h.SpanID, recvStart, now-recvStart, uint64(h.Count))
	}
	if h.SendUnixNanos > 0 {
		c.m.freshness(time.Duration(time.Now().UnixNano() - h.SendUnixNanos))
	}
	c.m.batch(sensor, fresh, dup, offset)
	if err := c.write(s, FrameAck, AppendAck(nil, Ack{Offset: offset})); err != nil {
		return false, err
	}
	return true, nil
}

// write frames and sends one payload on a session, under a write
// deadline so a peer that stopped reading cannot park the session
// goroutine forever.
func (c *Collector) write(s *session, t FrameType, payload []byte) error {
	b, err := AppendFrame(s.wbuf[:0], t, payload)
	if err != nil {
		return err
	}
	s.wbuf = b[:0]
	s.conn.SetWriteDeadline(time.Now().Add(c.cfg.DeadAfter))
	if _, err := s.conn.Write(b); err != nil {
		return err
	}
	c.m.frameOut(t, len(b))
	return nil
}

// reject sends a terminal Reject frame; the session ends either way.
func (c *Collector) reject(s *session, code uint16, msg string) {
	c.write(s, FrameReject, AppendReject(nil, Reject{Code: code, Msg: msg}))
}
