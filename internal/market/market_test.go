package market

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func newSim(t *testing.T, cfg Config) *Simulation {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Weeks: 0}); err == nil {
		t.Error("accepted zero weeks")
	}
	cfg := DefaultConfig(10, 1)
	cfg.DemandLossOnUnserved = 1.5
	if _, err := New(cfg); err == nil {
		t.Error("accepted loss fraction > 1")
	}
}

func TestInitialMarketStructure(t *testing.T) {
	s := newSim(t, DefaultConfig(10, 1))
	var large, medium, small, rounded int
	for _, p := range s.Providers() {
		switch p.Class {
		case Large:
			large++
		case Medium:
			medium++
		case Small:
			small++
		}
		if p.Counter == Rounded {
			rounded++
		}
		if !p.Alive {
			t.Errorf("provider %d starts dead", p.ID)
		}
	}
	if large != 4 || medium != 12 || small != 60 {
		t.Errorf("structure = %d/%d/%d larges/mediums/smalls", large, medium, small)
	}
	if rounded != 1 {
		t.Errorf("rounded counters = %d, want exactly 1 (the excluded booter)", rounded)
	}
}

func TestServedNeverExceedsDemandOrCapacity(t *testing.T) {
	s := newSim(t, DefaultConfig(52, 2))
	for w := 0; w < 52; w++ {
		rec, err := s.Step(80000)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Served > rec.Demand+1e-6 {
			t.Fatalf("week %d: served %.0f > demand %.0f", w, rec.Served, rec.Demand)
		}
		for id, n := range rec.ServedByProvider {
			p := s.Providers()[id]
			if n > p.Capacity+1e-6 {
				t.Fatalf("week %d: provider %d served %.0f > capacity %.0f", w, id, n, p.Capacity)
			}
		}
	}
}

func TestStepBeyondConfiguredWeeksFails(t *testing.T) {
	s := newSim(t, DefaultConfig(2, 3))
	for i := 0; i < 2; i++ {
		if _, err := s.Step(1000); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Step(1000); err == nil {
		t.Error("Step beyond Weeks should fail")
	}
}

func TestShockKillsLargestPermanently(t *testing.T) {
	cfg := DefaultConfig(20, 4)
	cfg.Shocks = []Shock{{Week: 5, KillLargest: 2, Permanent: true}}
	s := newSim(t, cfg)
	var biggest, second *Provider
	for _, p := range s.Providers() {
		if biggest == nil || p.Capacity > biggest.Capacity {
			second = biggest
			biggest = p
		} else if second == nil || p.Capacity > second.Capacity {
			second = p
		}
	}
	for w := 0; w < 20; w++ {
		if _, err := s.Step(50000); err != nil {
			t.Fatal(err)
		}
	}
	if biggest.Alive || !biggest.PermanentlyDead {
		t.Error("biggest provider should be permanently dead")
	}
	if second.Alive || !second.PermanentlyDead {
		t.Error("second provider should be permanently dead")
	}
}

func TestShockResurrectionSchedule(t *testing.T) {
	cfg := DefaultConfig(30, 5)
	cfg.Shocks = []Shock{{Week: 5, KillLargest: 1, Permanent: true, ResurrectAfter: 10}}
	s := newSim(t, cfg)
	var biggest *Provider
	for _, p := range s.Providers() {
		if biggest == nil || p.Capacity > biggest.Capacity {
			biggest = p
		}
	}
	aliveAt := make([]bool, 30)
	for w := 0; w < 30; w++ {
		if _, err := s.Step(50000); err != nil {
			t.Fatal(err)
		}
		aliveAt[w] = biggest.Alive
	}
	if aliveAt[5] || aliveAt[10] {
		t.Error("biggest provider should be down after the shock")
	}
	if !aliveAt[15] {
		t.Error("biggest provider should have returned at week 15")
	}
}

func TestSubcontractorsDieWithBackend(t *testing.T) {
	cfg := DefaultConfig(10, 6)
	cfg.Shocks = []Shock{{Week: 2, KillLargest: 1, KillSubcontractorsOf: true, Permanent: true}}
	s := newSim(t, cfg)
	// Find the subcontractors wired to the initial largest.
	var subs []*Provider
	for _, p := range s.Providers() {
		if p.Subcontractor >= 0 {
			subs = append(subs, p)
		}
	}
	if len(subs) == 0 {
		t.Skip("no subcontractors drawn for this seed")
	}
	for w := 0; w < 4; w++ {
		if _, err := s.Step(50000); err != nil {
			t.Fatal(err)
		}
	}
	backend := s.Providers()[subs[0].Subcontractor]
	if backend.Alive {
		t.Fatal("backend survived its own takedown")
	}
	for _, sub := range subs {
		if sub.Alive && sub.DiedWeek < 0 {
			t.Errorf("subcontractor %d never went down with its backend", sub.ID)
		}
	}
}

func TestEntrySuppressionReducesBirths(t *testing.T) {
	base := DefaultConfig(40, 7)
	s1 := newSim(t, base)
	suppressed := base
	suppressed.Shocks = []Shock{{Week: 0, EntrySuppression: 0.1, EntryWeeks: 40}}
	s2 := newSim(t, suppressed)
	var births1, births2 int
	for w := 0; w < 40; w++ {
		r1, err := s1.Step(50000)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := s2.Step(50000)
		if err != nil {
			t.Fatal(err)
		}
		births1 += r1.Births
		births2 += r2.Births
	}
	if births2 >= births1 {
		t.Errorf("suppressed births %d >= unsuppressed %d", births2, births1)
	}
}

func TestDisplacementAbsorbsDemand(t *testing.T) {
	// When the largest provider dies, survivors should pick up much of
	// its demand (the "displacement" the paper observes in March 2018).
	cfg := DefaultConfig(20, 8)
	cfg.Shocks = []Shock{{Week: 10, KillLargest: 1, Permanent: true}}
	s := newSim(t, cfg)
	var served []float64
	for w := 0; w < 20; w++ {
		rec, err := s.Step(60000)
		if err != nil {
			t.Fatal(err)
		}
		served = append(served, rec.Served)
	}
	pre := served[9]
	post := served[11]
	if post < pre*0.7 {
		t.Errorf("served fell from %.0f to %.0f; displacement should absorb most of the loss", pre, post)
	}
}

func TestCounterStyles(t *testing.T) {
	p := &Provider{Counter: Honest}
	p.serve(1234)
	if p.ReportedTotal() != 1234 {
		t.Errorf("honest counter = %v", p.ReportedTotal())
	}
	inflated := &Provider{Counter: Inflated, InflationOffset: 150000, reportedBase: 150000}
	inflated.serve(10)
	if inflated.ReportedTotal() != 150010 {
		t.Errorf("inflated counter = %v", inflated.ReportedTotal())
	}
	rounded := &Provider{Counter: Rounded}
	rounded.serve(12999)
	if rounded.ReportedTotal() != 12000 {
		t.Errorf("rounded counter = %v, want 12000", rounded.ReportedTotal())
	}
	wiper := &Provider{Counter: Wiping, WipeRate: 1}
	wiper.serve(500)
	rng := rand.New(rand.NewSource(1))
	if !wiper.maybeWipe(rng) {
		t.Fatal("wipe with rate 1 did not fire")
	}
	if wiper.ReportedTotal() != 0 {
		t.Errorf("counter after wipe = %v, want 0", wiper.ReportedTotal())
	}
	if wiper.TrueTotal() != 500 {
		t.Errorf("true total after wipe = %v, want 500", wiper.TrueTotal())
	}
	wiper.serve(100)
	if wiper.ReportedTotal() != 100 {
		t.Errorf("counter after wipe+serve = %v, want 100", wiper.ReportedTotal())
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	run := func() []float64 {
		s := newSim(t, DefaultConfig(30, 99))
		var out []float64
		for w := 0; w < 30; w++ {
			rec, err := s.Step(40000 + float64(w)*100)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, rec.Served)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("week %d: %v != %v (same seed must reproduce)", i, a[i], b[i])
		}
	}
}

func TestTrueTotalsNeverDecreaseProperty(t *testing.T) {
	f := func(seed int64) bool {
		cfg := DefaultConfig(20, seed)
		s, err := New(cfg)
		if err != nil {
			return false
		}
		prev := make(map[int]float64)
		for w := 0; w < 20; w++ {
			if _, err := s.Step(30000); err != nil {
				return false
			}
			for _, p := range s.Providers() {
				if p.TrueTotal() < prev[p.ID] {
					return false
				}
				prev[p.ID] = p.TrueTotal()
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestTopShareEmptyRange(t *testing.T) {
	s := newSim(t, DefaultConfig(5, 11))
	if got := s.TopShare(0, 0); got != 0 {
		t.Errorf("TopShare over empty range = %v", got)
	}
}

func TestStrings(t *testing.T) {
	if Large.String() != "large" || Small.String() != "small" || Medium.String() != "medium" {
		t.Error("SizeClass strings")
	}
	if Honest.String() != "honest" || Rounded.String() != "rounded" ||
		Wiping.String() != "wiping" || Inflated.String() != "inflated" {
		t.Error("CounterStyle strings")
	}
}
