package market

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Shock is a supply-side event applied to the market in a given week.
type Shock struct {
	// Week is the simulation week index the shock lands in.
	Week int
	// KillLargest takes down the N largest alive providers (domain
	// seizures + operator arrests make these permanent).
	KillLargest int
	// KillFraction additionally takes down this fraction of the remaining
	// alive small and medium providers (smaller services swept up in the
	// same operation); large survivors are untouched, matching the paper's
	// observation that the remaining major player kept serving. These
	// deaths are non-permanent.
	KillFraction float64
	// KillSubcontractorsOf takes down every provider whose attacks were
	// subcontracted to a provider killed by this shock.
	KillSubcontractorsOf bool
	// EntrySuppression multiplies the new-provider entry rate for
	// EntryWeeks weeks (market closures remove shop-fronts).
	EntrySuppression float64
	// EntryWeeks is the duration of the entry suppression.
	EntryWeeks int
	// Permanent marks KillLargest victims as never resurrecting.
	Permanent bool
	// ResurrectAfter, if > 0, schedules the largest victim of the shock to
	// return under a similar name after that many weeks ("one of the
	// booters taken down in December returns" in March).
	ResurrectAfter int
}

// Config parameterises the market simulation.
type Config struct {
	// Weeks is the simulation length.
	Weeks int
	// Seed drives all randomness; the same seed reproduces the same
	// market exactly.
	Seed int64
	// InitialLarge, InitialMedium, InitialSmall set the starting market
	// structure.
	InitialLarge, InitialMedium, InitialSmall int
	// WeeklyEntryRate is the expected number of new (small) providers per
	// week before suppression.
	WeeklyEntryRate float64
	// DemandLossOnUnserved is the fraction of demand that is abandoned
	// (rather than displaced to other providers) when a provider cannot
	// serve it.
	DemandLossOnUnserved float64
	// Shocks are the supply-side intervention events.
	Shocks []Shock
}

// DefaultConfig returns the structure the paper describes entering 2018:
// four large providers (Webstresser plus the three major players that
// remain after its takedown), a mid-tier, and a long tail of small
// services.
func DefaultConfig(weeks int, seed int64) Config {
	return Config{
		Weeks:                weeks,
		Seed:                 seed,
		InitialLarge:         4,
		InitialMedium:        12,
		InitialSmall:         60,
		WeeklyEntryRate:      0.9,
		DemandLossOnUnserved: 0.5,
	}
}

// WeekRecord captures the market state after one simulated week.
type WeekRecord struct {
	// Week is the simulation week index.
	Week int
	// Demand is the total demand offered to the market.
	Demand float64
	// Served is the total attacks actually performed.
	Served float64
	// Unserved is demand that found no working provider.
	Unserved float64
	// ServedByProvider maps provider ID to attacks served this week.
	ServedByProvider map[int]float64
	// AliveProviders is the number of providers up this week.
	AliveProviders int
	// Births, Deaths, Resurrections count lifecycle events this week
	// (Figure 8's series).
	Births, Deaths, Resurrections int
	// Wipes counts counter-wipe events this week.
	Wipes int
}

// Simulation is a running booter-market model. Create with New, then call
// Step once per week with that week's demand.
type Simulation struct {
	cfg       Config
	rng       *rand.Rand
	providers []*Provider
	week      int
	records   []WeekRecord

	entrySuppressedUntil int
	entrySuppression     float64
	pendingResurrect     map[int]int // week -> provider ID
}

// New builds the initial market.
func New(cfg Config) (*Simulation, error) {
	if cfg.Weeks <= 0 {
		return nil, fmt.Errorf("market: config.Weeks must be positive, got %d", cfg.Weeks)
	}
	if cfg.DemandLossOnUnserved < 0 || cfg.DemandLossOnUnserved > 1 {
		return nil, fmt.Errorf("market: DemandLossOnUnserved %v outside [0,1]", cfg.DemandLossOnUnserved)
	}
	s := &Simulation{
		cfg:              cfg,
		rng:              rand.New(rand.NewSource(cfg.Seed)),
		pendingResurrect: make(map[int]int),
	}
	id := 0
	add := func(n int, class SizeClass) {
		for i := 0; i < n; i++ {
			s.providers = append(s.providers, newProvider(id, 0, class, s.rng))
			id++
		}
	}
	add(cfg.InitialLarge, Large)
	add(cfg.InitialMedium, Medium)
	add(cfg.InitialSmall, Small)
	// Exactly one mid-size provider reports only multiples of 1000 (the
	// one the paper excludes).
	for _, p := range s.providers {
		if p.Class == Medium {
			p.Counter = Rounded
			break
		}
	}
	// A slice of the small and mid tier subcontracts its attacks to the
	// largest provider (Webstresser-style reselling: "Webstresser may have
	// been providing the actual attack infrastructure and other booters
	// were merely a shop-front"). Its takedown later kills them too.
	if cfg.InitialLarge > 0 {
		big := s.largestAlive()
		count := 0
		for _, p := range s.providers {
			if p.Class != Large && s.rng.Float64() < 0.3 {
				p.Subcontractor = big.ID
				count++
				if count >= 18 {
					break
				}
			}
		}
	}
	return s, nil
}

// Providers returns the full provider list (including dead ones).
func (s *Simulation) Providers() []*Provider { return s.providers }

// Week returns the number of weeks simulated so far.
func (s *Simulation) Week() int { return s.week }

// Records returns the per-week records accumulated so far.
func (s *Simulation) Records() []WeekRecord { return s.records }

// largestAlive returns the alive provider with the biggest capacity, or nil.
func (s *Simulation) largestAlive() *Provider {
	var best *Provider
	for _, p := range s.providers {
		if p.Alive && (best == nil || p.Capacity > best.Capacity) {
			best = p
		}
	}
	return best
}

// Step advances the simulation one week with the given offered demand
// (total attacks users want to buy this week) and returns the week record.
func (s *Simulation) Step(demand float64) (WeekRecord, error) {
	if s.week >= s.cfg.Weeks {
		return WeekRecord{}, fmt.Errorf("market: simulation already ran its configured %d weeks", s.cfg.Weeks)
	}
	rec := WeekRecord{Week: s.week, Demand: demand, ServedByProvider: make(map[int]float64)}

	// 1. Scheduled resurrections from shocks.
	if id, ok := s.pendingResurrect[s.week]; ok {
		for _, p := range s.providers {
			if p.ID == id && !p.Alive {
				p.Alive = true
				p.PermanentlyDead = false
				rec.Resurrections++
			}
		}
		delete(s.pendingResurrect, s.week)
	}

	// 2. Apply supply shocks scheduled for this week.
	for _, shock := range s.cfg.Shocks {
		if shock.Week != s.week {
			continue
		}
		s.applyShock(shock, &rec)
	}

	// 3. Random churn: outages, recoveries, entries.
	for _, p := range s.providers {
		switch {
		case p.Alive && s.rng.Float64() < p.OutageRate:
			p.Alive = false
			p.DiedWeek = s.week
			rec.Deaths++
		case !p.Alive && !p.PermanentlyDead && s.rng.Float64() < p.ResurrectionRate:
			p.Alive = true
			rec.Resurrections++
		}
	}
	entry := s.cfg.WeeklyEntryRate
	if s.week < s.entrySuppressedUntil {
		entry *= s.entrySuppression
	}
	for n := poissonDraw(entry, s.rng); n > 0; n-- {
		class := Small
		if s.rng.Float64() < 0.12 {
			class = Medium
		}
		p := newProvider(len(s.providers), s.week, class, s.rng)
		s.providers = append(s.providers, p)
		rec.Births++
	}

	// 4. Allocate demand to alive providers proportional to attractiveness
	// with capacity caps; displaced demand re-allocates once, losing
	// DemandLossOnUnserved on the way ("the influx of users can overwhelm
	// them").
	remaining := demand
	for round := 0; round < 2 && remaining > 1e-9; round++ {
		var totalAttr float64
		for _, p := range s.providers {
			if p.Alive && s.headroom(p, rec.ServedByProvider) > 0 {
				totalAttr += p.Attractiveness
			}
		}
		if totalAttr == 0 {
			break
		}
		var displaced float64
		for _, p := range s.providers {
			if !p.Alive {
				continue
			}
			head := s.headroom(p, rec.ServedByProvider)
			if head <= 0 {
				continue
			}
			want := remaining * p.Attractiveness / totalAttr
			got := want
			if got > head {
				displaced += want - head
				got = head
			}
			rec.ServedByProvider[p.ID] += got
		}
		if round == 0 {
			remaining = displaced * (1 - s.cfg.DemandLossOnUnserved)
			rec.Unserved += displaced * s.cfg.DemandLossOnUnserved
		} else {
			rec.Unserved += displaced
			remaining = 0
		}
	}

	// 5. Book the served attacks, roll counter wipes. Iterate providers in
	// ID order so the floating-point total is deterministic for a given
	// seed (map iteration order is randomized).
	for _, p := range s.providers {
		n, ok := rec.ServedByProvider[p.ID]
		if !ok {
			continue
		}
		// Subcontracted providers pass the work to their backend but still
		// count it on their own public counter.
		p.serve(n)
		rec.Served += n
	}
	for _, p := range s.providers {
		if p.Alive && p.maybeWipe(s.rng) {
			rec.Wipes++
		}
	}
	for _, p := range s.providers {
		if p.Alive {
			rec.AliveProviders++
		}
	}

	s.records = append(s.records, rec)
	s.week++
	return rec, nil
}

// headroom returns the provider's remaining weekly capacity.
func (s *Simulation) headroom(p *Provider, served map[int]float64) float64 {
	return p.Capacity - served[p.ID]
}

// applyShock executes one supply shock.
func (s *Simulation) applyShock(shock Shock, rec *WeekRecord) {
	alive := make([]*Provider, 0, len(s.providers))
	for _, p := range s.providers {
		if p.Alive {
			alive = append(alive, p)
		}
	}
	sort.Slice(alive, func(i, j int) bool { return alive[i].Capacity > alive[j].Capacity })

	killed := make(map[int]bool)
	kill := func(p *Provider, permanent bool) {
		if !p.Alive {
			return
		}
		p.Alive = false
		p.DiedWeek = s.week
		p.PermanentlyDead = p.PermanentlyDead || permanent
		killed[p.ID] = true
		rec.Deaths++
	}
	for i := 0; i < shock.KillLargest && i < len(alive); i++ {
		kill(alive[i], shock.Permanent)
		if i == 0 && shock.ResurrectAfter > 0 {
			s.pendingResurrect[s.week+shock.ResurrectAfter] = alive[i].ID
		}
	}
	if shock.KillFraction > 0 {
		for _, p := range alive {
			if !p.Alive || killed[p.ID] || p.Class == Large {
				continue
			}
			if s.rng.Float64() < shock.KillFraction {
				kill(p, false)
			}
		}
	}
	if shock.KillSubcontractorsOf {
		for _, p := range s.providers {
			if p.Alive && p.Subcontractor >= 0 && killed[p.Subcontractor] {
				kill(p, false)
			}
		}
	}
	if shock.EntrySuppression > 0 && shock.EntryWeeks > 0 {
		s.entrySuppressedUntil = s.week + shock.EntryWeeks
		s.entrySuppression = shock.EntrySuppression
	}
}

// TopShare returns the served-attack share of the largest provider over the
// given week range [from, to), e.g. to verify the post-Xmas2018 structure
// where "the remaining one maintain[s] a substantial share (about 60%)".
func (s *Simulation) TopShare(from, to int) float64 {
	totals := make(map[int]float64)
	var all float64
	for _, rec := range s.records {
		if rec.Week < from || rec.Week >= to {
			continue
		}
		for id, n := range rec.ServedByProvider {
			totals[id] += n
			all += n
		}
	}
	var best float64
	for _, n := range totals {
		if n > best {
			best = n
		}
	}
	if all == 0 {
		return 0
	}
	return best / all
}

// poissonDraw draws a Poisson variate with the given mean using Knuth's
// method (means here are small).
func poissonDraw(mean float64, rng *rand.Rand) int {
	if mean <= 0 {
		return 0
	}
	l := -mean
	k := 0
	p := 0.0
	for {
		p += math.Log(rng.Float64())
		if p < l {
			return k
		}
		k++
	}
}
