// Package market implements an agent-based simulation of the booter
// market: providers with a heavy-tailed size distribution and lifecycle
// (births, deaths, resurrections), weekly user demand allocated across
// providers with displacement when providers fail, interventions that
// remove supply and suppress demand, and the self-reported attack counters
// (with the artifacts the paper documents: counter wipes, inflated starting
// values, and one provider reporting only multiples of 1000).
//
// The simulation substitutes for the live market the paper measured; its
// outputs feed the same collection and analysis code paths the paper's
// datasets do.
package market

import (
	"fmt"
	"math/rand"
)

// SizeClass buckets providers by scale, mirroring the paper's narrative of
// "three major players and numerous smaller providers".
type SizeClass int

const (
	// Small providers serve little traffic and are unstable.
	Small SizeClass = iota
	// Medium providers are "fairly unstable" mid-market booters.
	Medium
	// Large providers are the handful of market leaders.
	Large
)

// String returns the class label.
func (s SizeClass) String() string {
	switch s {
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Large:
		return "large"
	default:
		return fmt.Sprintf("SizeClass(%d)", int(s))
	}
}

// CounterStyle describes how a provider's public attack counter relates to
// the true count (§3's data-quality discussion).
type CounterStyle int

const (
	// Honest counters report the true cumulative total.
	Honest CounterStyle = iota
	// Inflated counters started from a large constant instead of zero.
	Inflated
	// Wiping counters are zeroed from time to time ("some wipe their
	// databases").
	Wiping
	// Rounded counters only report multiples of 1000 (the provider the
	// paper excludes).
	Rounded
)

// String returns the style label.
func (c CounterStyle) String() string {
	switch c {
	case Honest:
		return "honest"
	case Inflated:
		return "inflated"
	case Wiping:
		return "wiping"
	case Rounded:
		return "rounded"
	default:
		return fmt.Sprintf("CounterStyle(%d)", int(c))
	}
}

// Provider is one booter service.
type Provider struct {
	// ID is the provider's stable index in the simulation.
	ID int
	// Name is a synthetic service name.
	Name string
	// Class is the provider's size class.
	Class SizeClass
	// Attractiveness is the provider's share weight when demand is
	// allocated (advertising reach, reputation).
	Attractiveness float64
	// Capacity is the maximum attacks the provider can serve per week.
	Capacity float64
	// OutageRate is the weekly probability of a temporary outage
	// (medium-size booters "tend to be fairly unstable").
	OutageRate float64
	// ResurrectionRate is the weekly probability a dead provider returns.
	ResurrectionRate float64
	// Subcontractor, when >= 0, is the ID of the provider that actually
	// performs this provider's attacks (Webstresser-style reselling: a
	// takedown of the subcontractor disrupts its shop-fronts too).
	Subcontractor int
	// Counter is the provider's self-report style.
	Counter CounterStyle
	// InflationOffset is the fake starting value of an Inflated counter.
	InflationOffset float64
	// WipeRate is the weekly probability a Wiping counter resets.
	WipeRate float64

	// BornWeek is the week index the provider entered the market.
	BornWeek int
	// Alive reports whether the provider is currently serving.
	Alive bool
	// PermanentlyDead providers never resurrect (operator arrested).
	PermanentlyDead bool
	// DiedWeek is the last week the provider went down (-1 if never).
	DiedWeek int

	// trueTotal is the cumulative count of attacks actually served.
	trueTotal float64
	// reportedBase adjusts the public counter (inflation minus wipes).
	reportedBase float64
}

// ReportedTotal returns the value the provider's public counter shows.
func (p *Provider) ReportedTotal() float64 {
	v := p.trueTotal + p.reportedBase
	if p.Counter == Rounded {
		return float64(int(v/1000) * 1000)
	}
	return v
}

// TrueTotal returns the provider's actual cumulative attack count.
func (p *Provider) TrueTotal() float64 { return p.trueTotal }

// serve records n attacks performed this week.
func (p *Provider) serve(n float64) { p.trueTotal += n }

// maybeWipe rolls the weekly database-wipe event for Wiping counters.
func (p *Provider) maybeWipe(rng *rand.Rand) bool {
	if p.Counter != Wiping || p.WipeRate <= 0 {
		return false
	}
	if rng.Float64() < p.WipeRate {
		// Zero the public counter without losing the true history.
		p.reportedBase = -p.trueTotal
		return true
	}
	return false
}

// classParams returns the capacity scale, outage rate, resurrection rate
// and attractiveness boost for a size class. The market is concentrated:
// the few large providers hold most of the demand-share weight, matching
// the paper's structure of "three major players and numerous smaller
// providers" where closing two of the three leaves the survivor with ~60%.
func classParams(c SizeClass) (capScale, outage, resurrect, boost float64) {
	switch c {
	case Large:
		return 60000, 0.004, 0.4, 4.0
	case Medium:
		return 6000, 0.02, 0.25, 1.5
	default:
		return 1200, 0.03, 0.12, 1.0
	}
}

// newProvider draws a provider of the given class.
func newProvider(id, bornWeek int, class SizeClass, rng *rand.Rand) *Provider {
	capScale, outage, res, boost := classParams(class)
	// Heavy-tailed capacity within class: lognormal-ish spread.
	capacity := capScale * (0.5 + rng.Float64()*1.5)
	attract := boost * capacity * (0.7 + 0.6*rng.Float64())
	p := &Provider{
		ID:               id,
		Name:             fmt.Sprintf("stresser-%03d", id),
		Class:            class,
		Attractiveness:   attract,
		Capacity:         capacity,
		OutageRate:       outage,
		ResurrectionRate: res,
		Subcontractor:    -1,
		Counter:          Honest,
		BornWeek:         bornWeek,
		Alive:            true,
		DiedWeek:         -1,
	}
	// Counter artifacts roughly as the paper observed: a handful inflated,
	// some wiping, exactly one rounded (assigned by the simulation).
	switch r := rng.Float64(); {
	case r < 0.05:
		p.Counter = Inflated
		p.InflationOffset = float64(50000 + rng.Intn(150001))
		p.reportedBase = p.InflationOffset
	case r < 0.20:
		p.Counter = Wiping
		p.WipeRate = 0.02
	}
	return p
}
