package booters

import (
	"math"
	"sync"
	"testing"

	"booters/internal/dataset"
	"booters/internal/geo"
)

// sharedPanel generates the default panel once for the integration tests.
var (
	panelOnce sync.Once
	panelVal  *dataset.Panel
	panelErr  error
)

func testPanel(t *testing.T) *dataset.Panel {
	t.Helper()
	panelOnce.Do(func() {
		panelVal, panelErr = GeneratePanel(DefaultSeed)
	})
	if panelErr != nil {
		t.Fatalf("GeneratePanel: %v", panelErr)
	}
	return panelVal
}

func TestPanelShape(t *testing.T) {
	p := testPanel(t)
	if p.Weeks < 240 || p.Weeks > 260 {
		t.Errorf("panel covers %d weeks, want ~248 (five years)", p.Weeks)
	}
	if len(p.ByCountry) != len(geo.Countries()) {
		t.Errorf("countries = %d, want %d", len(p.ByCountry), len(geo.Countries()))
	}
	// Global series is strictly positive and in a plausible range.
	for i, v := range p.Global.Values {
		if v <= 0 {
			t.Fatalf("week %d: non-positive global count %v", i, v)
		}
	}
	if mean := p.Global.Total() / float64(p.Weeks); mean < 20000 || mean > 300000 {
		t.Errorf("mean weekly attacks %v outside plausible range", mean)
	}
}

func TestGlobalModelRecoversTable1(t *testing.T) {
	p := testPanel(t)
	m, err := FitGlobalModel(p)
	if err != nil {
		t.Fatal(err)
	}
	// Every modelled intervention must come out as a significant drop, and
	// its estimate must match the exact planted ground truth over the
	// fitted window (computed from the generator's counterfactual).
	for _, name := range []string{"Xmas2018", "Webstresser", "Mirai", "HackForums", "vDOS"} {
		eff, err := m.Effect(name)
		if err != nil {
			t.Fatal(err)
		}
		if !eff.Significant() {
			t.Errorf("%s: not significant (p = %.4f, mean %.1f%%)", name, eff.P, eff.Mean)
		}
		if eff.Mean >= 0 {
			t.Errorf("%s: recovered %+.1f%%, want a drop", name, eff.Mean)
		}
		truth, ok := p.GroundTruthEffect(eff.Start, eff.Weeks)
		if !ok {
			t.Fatalf("%s: fitted window outside panel", name)
		}
		if math.Abs(eff.Mean-truth) > 10 {
			t.Errorf("%s: recovered %.1f%% over %d weeks, ground truth %.1f%%",
				name, eff.Mean, eff.Weeks, truth)
		}
	}
	// The trend must be positive and strongly significant (the paper's
	// time coefficient: +0.010 per week).
	tc, err := m.Fit.Coef("time")
	if err != nil {
		t.Fatal(err)
	}
	if tc.Estimate <= 0 || tc.P > 0.01 {
		t.Errorf("trend = %.5f (p=%.4g), want positive and significant", tc.Estimate, tc.P)
	}
	if tc.Estimate < 0.004 || tc.Estimate > 0.015 {
		t.Errorf("trend = %.5f, want in [0.004, 0.015] (paper: 0.010)", tc.Estimate)
	}
	// Shape: Xmas2018 and HackForums are the long interventions; vDOS and
	// Webstresser the short ones (paper durations 10 & 13 vs 3 & 3).
	long := map[string]bool{"Xmas2018": true, "HackForums": true}
	for _, eff := range m.Effects {
		if long[eff.Name] && eff.Weeks < 5 {
			t.Errorf("%s fitted duration %d weeks, want a long window", eff.Name, eff.Weeks)
		}
		if (eff.Name == "vDOS" || eff.Name == "Webstresser") && eff.Weeks > 6 {
			t.Errorf("%s fitted duration %d weeks, want a short window", eff.Name, eff.Weeks)
		}
	}
}

func TestCountryContrastsMatchTable2(t *testing.T) {
	p := testPanel(t)
	res, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	// France is not significantly affected by Xmas2018 (planted -1%).
	fr := res.PerCountry[geo.FR]
	frXmas, err := fr.Effect("Xmas2018")
	if err != nil {
		t.Fatal(err)
	}
	if frXmas.StronglySignificant() && math.Abs(frXmas.Mean) > 12 {
		t.Errorf("FR Xmas2018 = %.1f%% (p=%.3f), paper finds no effect", frXmas.Mean, frXmas.P)
	}
	// The Netherlands sees a large, significant INCREASE at Webstresser
	// (reprisals; planted +146%).
	nl := res.PerCountry[geo.NL]
	nlWeb, err := nl.Effect("Webstresser")
	if err != nil {
		t.Fatal(err)
	}
	if nlWeb.Mean < 50 {
		t.Errorf("NL Webstresser = %.1f%%, want a large increase", nlWeb.Mean)
	}
	if !nlWeb.Significant() {
		t.Errorf("NL Webstresser increase not significant (p=%.4f)", nlWeb.P)
	}
	// The US is hit harder than the UK by Xmas2018 (planted -49 vs -27).
	usXmas, _ := res.PerCountry[geo.US].Effect("Xmas2018")
	ukXmas, _ := res.PerCountry[geo.UK].Effect("Xmas2018")
	if usXmas.Mean >= ukXmas.Mean {
		t.Errorf("US Xmas2018 %.1f%% should be deeper than UK %.1f%%", usXmas.Mean, ukXmas.Mean)
	}
	// Russia shows no significant Mirai effect (planted -5%).
	ruMirai, _ := res.PerCountry[geo.RU].Effect("Mirai")
	if ruMirai.StronglySignificant() && ruMirai.Mean < -15 {
		t.Errorf("RU Mirai = %.1f%% (p=%.3f), paper finds no effect", ruMirai.Mean, ruMirai.P)
	}
}

func TestDetectInterventionsFindsModelledEvents(t *testing.T) {
	p := testPanel(t)
	cands, matches, err := DetectInterventions(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidate drops detected")
	}
	found := make(map[string]bool)
	for _, name := range matches {
		if name != "" {
			found[name] = true
		}
	}
	// The two largest planted drops must be discovered and matched.
	for _, want := range []string{"Xmas2018", "HackForums"} {
		if !found[want] {
			t.Errorf("detection did not recover %s; matched = %v", want, matches)
		}
	}
}

func TestNCAAnalysisFlattensUK(t *testing.T) {
	p := testPanel(t)
	nca, err := AnalyzeNCA(p)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-campaign both rise; during the campaign the UK flattens while
	// the US keeps rising (paper: UK slope 3.2 -> -0.1; US 5.3 -> 6.8).
	// The raw campaign window starts in high season (December) and ends in
	// low season (April), dragging both slopes down equally, so the clean
	// comparison is difference-in-differences: the UK slope must fall
	// relative to the US slope.
	if nca.PreUKSlope <= 0 {
		t.Errorf("pre-campaign UK slope %.2f, want positive", nca.PreUKSlope)
	}
	if nca.PreUSSlope <= 0 {
		t.Errorf("pre-campaign US slope %.2f, want positive", nca.PreUSSlope)
	}
	if nca.CampaignUSSlope <= 0 {
		t.Errorf("US campaign slope %.2f, want continued growth", nca.CampaignUSSlope)
	}
	if nca.CampaignUKSlope >= nca.CampaignUSSlope {
		t.Errorf("UK campaign slope %.2f should fall below US %.2f",
			nca.CampaignUKSlope, nca.CampaignUSSlope)
	}
	did := (nca.CampaignUKSlope - nca.PreUKSlope) - (nca.CampaignUSSlope - nca.PreUSSlope)
	if did > -0.3 {
		t.Errorf("difference-in-differences = %.2f, want clearly negative (UK flattened)", did)
	}
}

func TestSelfReportStructure(t *testing.T) {
	p := testPanel(t)
	sr := p.SelfReport
	if sr == nil {
		t.Fatal("no self-report panel")
	}
	if len(sr.Sites) < 50 {
		t.Errorf("only %d booters tracked, want a populous market", len(sr.Sites))
	}
	// Churn spikes: deaths in the Webstresser and Xmas2018 weeks must
	// exceed the background death rate.
	var webIdx, xmasIdx int
	webIdx = weeksFrom(sr.Start.Start.Year(), sr, 2018, 4, 24)
	xmasIdx = weeksFrom(sr.Start.Start.Year(), sr, 2018, 12, 19)
	var background float64
	var n int
	for i, c := range sr.Churn {
		if i == webIdx || i == xmasIdx {
			continue
		}
		background += float64(c.Deaths)
		n++
	}
	background /= float64(n)
	if float64(sr.Churn[webIdx].Deaths) < background+3 {
		t.Errorf("Webstresser week deaths = %d, background %.1f; want a spike",
			sr.Churn[webIdx].Deaths, background)
	}
	if float64(sr.Churn[xmasIdx].Deaths) < background+3 {
		t.Errorf("Xmas2018 week deaths = %d, background %.1f; want a spike",
			sr.Churn[xmasIdx].Deaths, background)
	}
	// Post-Xmas2018 concentration: the surviving market leader holds a
	// dominant share (paper: ~60%).
	share := sr.Market.TopShare(xmasIdx, xmasIdx+10)
	if share < 0.4 || share > 0.85 {
		t.Errorf("post-Xmas2018 top provider share = %.2f, want ~0.6", share)
	}
	preShare := sr.Market.TopShare(0, webIdx)
	if share <= preShare {
		t.Errorf("market should concentrate after Xmas2018: share %.2f <= pre %.2f", share, preShare)
	}
}

// weeksFrom returns the week index of a date inside the self-report panel.
func weeksFrom(_ int, sr *dataset.SelfReportPanel, y, m, d int) int {
	target := mustDate(y, m, d)
	idx := int(target.Sub(sr.Start.Start).Hours() / (24 * 7))
	if idx < 0 || idx >= sr.Weeks {
		return 0
	}
	return idx
}

func TestSelfReportCorrelatesWithHoneypotData(t *testing.T) {
	p := testPanel(t)
	total := p.SelfReport.WeeklySelfReportTotal()
	// Align the global series to the self-report window.
	offset := int(total.StartWeek.Start.Sub(p.Start.Start).Hours() / (24 * 7))
	global := p.Global.Values[offset : offset+total.Len()]
	var a, b []float64
	// Skip the first week (no difference available) and any zero weeks.
	for i := 1; i < total.Len(); i++ {
		if total.Values[i] > 0 {
			a = append(a, total.Values[i])
			b = append(b, global[i])
		}
	}
	r := correlation(a, b)
	// The paper reports r = 0.47; we require a clearly positive link.
	if r < 0.3 {
		t.Errorf("self-report vs honeypot correlation = %.2f, want moderate positive", r)
	}
}

func TestTable3ShareShape(t *testing.T) {
	p := testPanel(t)
	// At Feb 2017 the China surge spikes CN's share (the paper's Table 3
	// shows 16% -> 55% -> 12%; the reproduction scales the surge down —
	// see EXPERIMENTS.md — but the spike-and-fall shape must hold) and the
	// double counting pushes the column total above 100%.
	s16 := CountrySharesAt(p, 2016, 2)
	s17 := CountrySharesAt(p, 2017, 2)
	s18 := CountrySharesAt(p, 2018, 2)
	if s17[geo.CN] < 1.6*s16[geo.CN] {
		t.Errorf("Feb-17 CN share %.0f%% should spike above 1.6x Feb-16 (%.0f%%)", s17[geo.CN], s16[geo.CN])
	}
	if s18[geo.CN] > 0.6*s17[geo.CN] {
		t.Errorf("Feb-18 CN share %.0f%% should fall back from the Feb-17 spike (%.0f%%)", s18[geo.CN], s17[geo.CN])
	}
	var total float64
	for _, v := range s17 {
		total += v
	}
	if total <= 100 {
		t.Errorf("Feb-17 share total = %.0f%%, want > 100%% (double counting)", total)
	}
	// At Feb 2019 the US dominates again (paper: 47%).
	s19 := CountrySharesAt(p, 2019, 2)
	if s19[geo.US] < 30 {
		t.Errorf("Feb-19 US share = %.0f%%, want dominant", s19[geo.US])
	}
	if s19[geo.CN] > s19[geo.US] {
		t.Errorf("Feb-19 CN share %.0f%% should be below US %.0f%%", s19[geo.CN], s19[geo.US])
	}
}

func TestProtocolShapesMatchFigure6(t *testing.T) {
	p := testPanel(t)
	ldap := p.ByProtocol[protoByName(t, "LDAP")]
	ntp := p.ByProtocol[protoByName(t, "NTP")]
	// LDAP grows: 2018 total far exceeds 2016 total.
	y2016 := yearTotal(ldap, 2016)
	y2018 := yearTotal(ldap, 2018)
	if y2018 < 3*y2016 {
		t.Errorf("LDAP 2018 (%.0f) should dwarf 2016 (%.0f)", y2018, y2016)
	}
	// NTP's share declines over the same span.
	ntpShare2016 := yearTotal(ntp, 2016) / yearTotal(p.Global, 2016)
	ntpShare2018 := yearTotal(ntp, 2018) / yearTotal(p.Global, 2018)
	if ntpShare2018 >= ntpShare2016 {
		t.Errorf("NTP share should fall: 2016 %.3f -> 2018 %.3f", ntpShare2016, ntpShare2018)
	}
}
