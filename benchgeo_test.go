package booters

import "booters/internal/geo"

func newBenchGeoTable() *geo.Table { return geo.NewTable() }
