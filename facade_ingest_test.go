package booters

import (
	"path/filepath"
	"testing"
	"time"

	"booters/internal/geo"
	"booters/internal/honeypot"
	"booters/internal/ingest"
	"booters/internal/protocols"
)

// TestIngestorFeedsPanel checks the facade bridge: a stream ingested via
// NewIngestor becomes a dataset.Panel aligned with the batch panel's span,
// sliceable over the model window, with the stream's attacks in place.
func TestIngestorFeedsPanel(t *testing.T) {
	streamStart := time.Date(2018, time.January, 1, 0, 0, 0, 0, time.UTC)
	packets, err := ingest.SyntheticStream(ingest.StreamConfig{
		Seed:           DefaultSeed,
		Start:          streamStart,
		Weeks:          8,
		AttacksPerWeek: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewIngestor(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range packets {
		if err := in.Ingest(p); err != nil {
			t.Fatal(err)
		}
	}
	res, err := in.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Attacks == 0 {
		t.Fatal("stream produced no attacks")
	}

	panel := PanelFromIngest(res)
	want, err := GeneratePanel(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if !panel.Start.Equal(want.Start) || panel.Weeks != want.Weeks {
		t.Fatalf("panel span: got %v+%d want %v+%d", panel.Start, panel.Weeks, want.Start, want.Weeks)
	}
	if got := panel.Global.Total(); got != float64(res.Stats.Attacks) {
		t.Errorf("global total: got %v want %d", got, res.Stats.Attacks)
	}
	for _, c := range geo.Table2Countries() {
		if _, ok := panel.ByCountry[c]; !ok {
			t.Errorf("missing country series %s", c)
		}
	}
	for _, p := range protocols.All() {
		if _, ok := panel.ByProtocol[p]; !ok {
			t.Errorf("missing protocol series %v", p)
		}
	}

	// The country-by-protocol breakdown must arrive populated (the gap
	// this bridge used to leave): full shape, and per-country marginals
	// matching the country series so FitCountryModel-style exhibits can
	// decompose by protocol.
	for _, c := range geo.Countries() {
		cp, ok := panel.CountryProtocol[c]
		if !ok {
			t.Fatalf("missing country-protocol breakdown for %s", c)
		}
		var cpTotal, cTotal float64
		for _, p := range protocols.All() {
			s, ok := cp[p]
			if !ok {
				t.Fatalf("missing breakdown series %s/%v", c, p)
			}
			cpTotal += s.Total()
		}
		cTotal = panel.ByCountry[c].Total()
		if cpTotal != cTotal {
			t.Errorf("%s breakdown total %v != country total %v", c, cpTotal, cTotal)
		}
	}

	// The model-window slice must cover the stream's weeks: every ingested
	// attack survives the slicing FitGlobalModel applies.
	from, to := ModelWindow()
	s := panel.Global.Slice(from, to)
	if got := s.Total(); got != float64(res.Stats.Attacks) {
		t.Errorf("model-window slice dropped attacks: got %v want %d", got, res.Stats.Attacks)
	}

	// And the bridge must not alias ingest's storage.
	res.Global.Values[0] = 1e9
	if panel.Global.Values[0] == 1e9 {
		t.Error("PanelFromIngest aliases the ingest result's series")
	}
}

// TestSpoolRecordReplayFacade drives the record-once-replay-many workflow
// end to end through the facade: spool a synthetic stream to disk, replay
// it through a fresh ingestor with a top-K sink attached, and check the
// replayed panel matches a direct in-memory run.
func TestSpoolRecordReplayFacade(t *testing.T) {
	packets, err := ingest.SyntheticStream(ingest.StreamConfig{
		Seed:           DefaultSeed,
		Start:          time.Date(2018, time.January, 1, 0, 0, 0, 0, time.UTC),
		Weeks:          4,
		AttacksPerWeek: 50,
	})
	if err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(t.TempDir(), "capture")
	n, err := RecordSpool(dir, packets)
	if err != nil {
		t.Fatal(err)
	}
	if n != uint64(len(packets)) {
		t.Fatalf("recorded %d datagrams, want %d", n, len(packets))
	}

	direct, err := NewIngestor(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range packets {
		if err := direct.Ingest(p); err != nil {
			t.Fatal(err)
		}
	}
	want, err := direct.Close()
	if err != nil {
		t.Fatal(err)
	}

	topk := ingest.NewTopKSink(3)
	in, err := NewIngestor(3, topk)
	if err != nil {
		t.Fatal(err)
	}
	read, err := ReplaySpool(in, dir)
	if err != nil {
		t.Fatal(err)
	}
	if read != n {
		t.Fatalf("replayed %d datagrams, recorded %d", read, n)
	}
	got, err := in.Close()
	if err != nil {
		t.Fatal(err)
	}

	if got.Stats.Attacks != want.Stats.Attacks || got.Stats.Flows != want.Stats.Flows {
		t.Errorf("replayed stats: got %+v want %+v", got.Stats, want.Stats)
	}
	if gt, wt := got.Global.Total(), want.Global.Total(); gt != wt {
		t.Errorf("replayed global total: got %v want %v", gt, wt)
	}
	ranked := topk.TopCountries()
	if len(ranked) != 3 {
		t.Fatalf("top-K countries: got %d rows want 3", len(ranked))
	}
	var total int
	for _, row := range ranked {
		total += row.Attacks
	}
	if total == 0 {
		t.Error("top-K sink saw no attacks during replay")
	}
}

// TestUnorderedReplayFacade drives the order-tolerant replay path end to
// end through the facade: record a spool, replay it unordered at 4
// workers into a NewUnorderedIngestor, and check the panel is identical
// to an ordered in-memory run. It also pins the guard: unordered replay
// into an ordered ingestor must be refused, not silently corrupted.
func TestUnorderedReplayFacade(t *testing.T) {
	packets, err := ingest.SyntheticStream(ingest.StreamConfig{
		Seed:           DefaultSeed,
		Start:          time.Date(2018, time.January, 1, 0, 0, 0, 0, time.UTC),
		Weeks:          4,
		AttacksPerWeek: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "capture")
	n, err := RecordSpoolWith(dir, packets, SpoolRecordOptions{SegmentBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}

	direct, err := NewIngestor(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range packets {
		if err := direct.Ingest(p); err != nil {
			t.Fatal(err)
		}
	}
	want, err := direct.Close()
	if err != nil {
		t.Fatal(err)
	}

	ordered, err := NewIngestor(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReplaySpoolWindow(ordered, dir, SpoolReplayOptions{Workers: 4, Unordered: true}); err == nil {
		t.Error("unordered replay into an ordered ingestor: want an error")
	}
	ordered.Close()

	in, err := NewUnorderedIngestor(3)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Unordered() {
		t.Fatal("NewUnorderedIngestor built an ordered pipeline")
	}
	rep, err := ReplaySpoolWindow(in, dir, SpoolReplayOptions{Workers: 4, Unordered: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Datagrams != n {
		t.Fatalf("unordered replay delivered %d datagrams, want %d", rep.Datagrams, n)
	}
	got, err := in.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.Attacks != want.Stats.Attacks || got.Stats.Flows != want.Stats.Flows || got.Stats.Late != 0 {
		t.Errorf("unordered stats: got %+v want %+v", got.Stats, want.Stats)
	}
	if gt, wt := got.Global.Total(), want.Global.Total(); gt != wt {
		t.Errorf("unordered global total: got %v want %v", gt, wt)
	}
}

// TestSpoolWindowFacade drives the spool v2 additions through the facade:
// record compressed, replay a time window with parallel segment readers,
// and check the windowed panel matches a direct run over the same packet
// subset.
func TestSpoolWindowFacade(t *testing.T) {
	start := time.Date(2018, time.January, 1, 0, 0, 0, 0, time.UTC)
	packets, err := ingest.SyntheticStream(ingest.StreamConfig{
		Seed:           DefaultSeed,
		Start:          start,
		Weeks:          6,
		AttacksPerWeek: 50,
	})
	if err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(t.TempDir(), "capture")
	n, err := RecordSpoolWith(dir, packets, SpoolRecordOptions{Codec: "lz4", SegmentBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if n != uint64(len(packets)) {
		t.Fatalf("recorded %d datagrams, want %d", n, len(packets))
	}

	from, to := start.AddDate(0, 0, 14), start.AddDate(0, 0, 28)
	var sub []honeypot.Packet
	for _, p := range packets {
		if !p.Time.Before(from) && p.Time.Before(to) {
			sub = append(sub, p)
		}
	}
	direct, err := NewIngestor(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range sub {
		if err := direct.Ingest(p); err != nil {
			t.Fatal(err)
		}
	}
	want, err := direct.Close()
	if err != nil {
		t.Fatal(err)
	}
	if want.Stats.Attacks == 0 {
		t.Fatal("degenerate windowed reference")
	}

	in, err := NewIngestor(3)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ReplaySpoolWindow(in, dir, SpoolReplayOptions{From: from, To: to, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Datagrams != uint64(len(sub)) {
		t.Fatalf("windowed replay delivered %d datagrams, want %d", rep.Datagrams, len(sub))
	}
	if rep.SegmentsSkipped == 0 {
		t.Error("windowed replay skipped no segments")
	}
	if len(rep.DataLoss) > 0 || len(rep.Warnings) > 0 {
		t.Errorf("clean replay reported loss=%v warnings=%v", rep.DataLoss, rep.Warnings)
	}
	got, err := in.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.Attacks != want.Stats.Attacks || got.Stats.Flows != want.Stats.Flows {
		t.Errorf("windowed stats: got %+v want %+v", got.Stats, want.Stats)
	}
	if gt, wt := got.Global.Total(), want.Global.Total(); gt != wt {
		t.Errorf("windowed global total: got %v want %v", gt, wt)
	}
}
