package booters

import (
	"errors"
	"fmt"
	"time"

	"booters/internal/dataset"
	"booters/internal/honeypot"
	"booters/internal/ingest"
	"booters/internal/its"
	"booters/internal/protocols"
	"booters/internal/serve"
	"booters/internal/spool"
	"booters/internal/timeseries"
)

// NewIngestor starts a streaming honeypot-ingestion pipeline covering the
// paper's five-year panel span with the given shard count (<= 0 means
// GOMAXPROCS). Feed it packets or wire-format datagrams from any number of
// goroutines, then Close it and pass the result through PanelFromIngest to
// run the paper's models on the ingested series.
//
// Optional sinks (ingest.NewTopKSink, ingest.NewNDJSONSink, or your own
// ingest.Sink) receive every closed flow alongside the built-in weekly
// panel; each must be a fresh instance.
func NewIngestor(shards int, sinks ...ingest.Sink) (*ingest.Ingestor, error) {
	return ingest.New(ingest.Config{
		Shards: shards,
		Start:  dataset.SpanStart,
		End:    dataset.SpanEnd,
		Sinks:  sinks,
	})
}

// NewUnorderedIngestor is NewIngestor with order-tolerant flow tables:
// every shard aggregates with the interval-merge aggregator, so packets
// may arrive in any order at or ahead of the pipeline's low-watermark.
// It is the pipeline ReplaySpoolWindow's Unordered mode requires —
// parallel spool readers hand whole segments over as they finish instead
// of re-serialising into recorded order. The panel is byte-identical to
// the ordered pipeline's by the merge aggregator's order-independence
// (see ARCHITECTURE.md).
func NewUnorderedIngestor(shards int, sinks ...ingest.Sink) (*ingest.Ingestor, error) {
	return ingest.New(ingest.Config{
		Shards:    shards,
		Start:     dataset.SpanStart,
		End:       dataset.SpanEnd,
		Sinks:     sinks,
		Unordered: true,
	})
}

// NewRollingIngestor is NewIngestor with rolling emission: the pipeline
// publishes an immutable weekly-panel snapshot each time its watermark
// carries the expiry horizon across a week boundary, plus a final one at
// Close — the feed Serve turns into a live HTTP query API. Snapshots can
// also be consumed directly via the ingestor's Snapshot and OnSnapshot.
func NewRollingIngestor(shards int, sinks ...ingest.Sink) (*ingest.Ingestor, error) {
	return ingest.New(ingest.Config{
		Shards:  shards,
		Start:   dataset.SpanStart,
		End:     dataset.SpanEnd,
		Sinks:   sinks,
		Rolling: true,
	})
}

// Serve attaches a live analytics server to a rolling ingestor (one from
// NewRollingIngestor, or any ingest.Config with Rolling set) and starts
// answering HTTP JSON queries on addr (host:port; port 0 picks a free
// one, reported by the returned server's Addr). Queries — current panel,
// weekly series by country/protocol, top-K rankings, on-demand
// intervention-model fits over any week window (memoized per snapshot,
// using the paper's Table 1 catalogue) — are served lock-free from the
// pipeline's latest snapshot while ingestion is still running; after the
// ingestor's Close the server keeps answering from the final panel until
// its own Close. See internal/serve for the endpoint reference.
func Serve(in *ingest.Ingestor, addr string) (*serve.Server, error) {
	return ServeSpool(in, addr, "")
}

// ServeSpool is Serve with a capture spool directory wired in, so the
// server's /v1/spool endpoint reports the segment index of the capture
// being recorded or replayed alongside the live panel ("" disables it).
func ServeSpool(in *ingest.Ingestor, addr, spoolDir string) (*serve.Server, error) {
	return serveWith(in, addr, spoolDir, Table1Interventions())
}

// serveWith is the shared serving harness: bind, subscribe to the
// pipeline's snapshot feed, seed with the current snapshot. The
// intervention catalogue parameterises /v1/model fits — the paper's
// Table 1 for real spans, a scenario manifest's injected effects for
// scenario runs (ServeScenario).
func serveWith(in *ingest.Ingestor, addr, spoolDir string, ivs []its.Intervention) (*serve.Server, error) {
	if !in.Rolling() {
		return nil, errors.New("booters: Serve requires a rolling ingestor (NewRollingIngestor or ingest.Config.Rolling)")
	}
	srv := serve.New(serve.Config{
		Ingest:        in,
		Interventions: ivs,
		SpoolDir:      spoolDir,
		// Fold the server's HTTP/model-cache families into the pipeline's
		// registry (when the ingestor carries one), so one /v1/metrics
		// scrape covers ingest, spool and serving together; likewise the
		// pipeline's tracer, so /v1/trace shows serve.query spans in the
		// same flight recorder as the ingest spans they ride on.
		Obs:   in.Metrics(),
		Trace: in.Trace(),
	})
	// Bind before subscribing: a failed Start must not leave a dead
	// server permanently subscribed to the pipeline's snapshot feed.
	if err := srv.Start(addr); err != nil {
		return nil, err
	}
	if err := in.OnSnapshot(srv.Publish); err != nil {
		srv.Close()
		return nil, err
	}
	// Seed with the current snapshot; the store's sequence guard makes
	// this race-free against a concurrent publish.
	if snap := in.Snapshot(); snap != nil {
		srv.Publish(snap)
	}
	return srv, nil
}

// SpoolRecordOptions tunes RecordSpoolWith.
type SpoolRecordOptions struct {
	// Codec names the block compression codec: "none" (or "") and
	// "lz4". Compression roughly halves cold-capture disk footprint at
	// a modest record-time CPU cost; replays decompress transparently.
	Codec string
	// SegmentBytes overrides the 64 MiB segment rotation threshold;
	// <= 0 keeps the default.
	SegmentBytes int64
}

// RecordSpool re-encodes decoded packets as wire-format datagrams and
// records them to an on-disk spool directory, so an expensive capture or
// synthetic market run is generated once and replayed many times (see
// ReplaySpool and ReplaySpoolWindow). It returns the number of datagrams
// recorded. The spool is written uncompressed; use RecordSpoolWith to
// pick a codec.
func RecordSpool(dir string, packets []honeypot.Packet) (uint64, error) {
	return RecordSpoolWith(dir, packets, SpoolRecordOptions{})
}

// RecordSpoolWith is RecordSpool with explicit spool options.
func RecordSpoolWith(dir string, packets []honeypot.Packet, opts SpoolRecordOptions) (uint64, error) {
	codec, err := spool.CodecByName(opts.Codec)
	if err != nil {
		return 0, err
	}
	w, err := spool.Create(dir, spool.Options{SegmentBytes: opts.SegmentBytes, Codec: codec})
	if err != nil {
		return 0, err
	}
	for _, d := range ingest.Datagrams(packets) {
		if err := w.Append(d); err != nil {
			w.Close()
			return w.Count(), err
		}
	}
	return w.Count(), w.Close()
}

// ReplaySpool streams every datagram recorded in the spool directory
// through the ingestor's wire-format decode path and returns the number of
// datagrams read. Datagrams the pipeline rejects (unknown port, malformed
// payload) are counted in its Stats and skipped, mirroring a live sensor
// that logs and keeps capturing; the replay only stops for spool errors or
// a closed ingestor. It is strict: a torn or corrupt segment fails the
// replay. Use ReplaySpoolWindow for time windows, parallel segment
// readers, and replays that tolerate and report corruption instead.
func ReplaySpool(in *ingest.Ingestor, dir string) (uint64, error) {
	var n uint64
	err := spool.Replay(dir, func(d ingest.Datagram) error {
		n++
		if err := in.IngestDatagram(d); errors.Is(err, ingest.ErrClosed) {
			return err
		}
		return nil
	})
	return n, err
}

// SpoolReplayOptions tunes ReplaySpoolWindow.
type SpoolReplayOptions struct {
	// From and To bound the replay to datagrams with From <= Time < To;
	// zero values leave the corresponding side unbounded. Whole
	// segments outside the window are skipped via the spool's index
	// without being opened.
	From, To time.Time
	// Workers is the number of concurrent segment readers decoding the
	// spool; <= 1 reads inline. Without Unordered, records are handed to
	// the pipeline in recorded order regardless of Workers, which is
	// what keeps replayed panels byte-identical to a sequential replay
	// through an ordered pipeline (see ARCHITECTURE.md).
	Workers int
	// Unordered lets each reader hand its decoded segments straight to
	// the pipeline as it finishes them — no re-serialisation barrier —
	// with the cross-reader low-watermark (advanced from segment
	// trailers) driving flow expiry instead of delivery order. It
	// requires an order-tolerant ingestor (NewUnorderedIngestor or
	// ingest.Config.Unordered); the replayed panel is still
	// byte-identical to the ordered one.
	Unordered bool
}

// SpoolReplayReport summarises a ReplaySpoolWindow run.
type SpoolReplayReport struct {
	// Datagrams is the number of datagrams delivered to the pipeline.
	Datagrams uint64
	// Filtered is the number of records read but outside [From, To).
	Filtered uint64
	// SegmentsRead and SegmentsSkipped count segments scanned versus
	// pruned via the index.
	SegmentsRead, SegmentsSkipped int
	// DataLoss describes each segment that lost records (or the
	// trailer attesting them) to truncation or corruption; empty means
	// every requested record was delivered from verified bytes.
	DataLoss []string
	// Warnings lists index degradations met on the way: a corrupt or
	// missing MANIFEST, torn trailers, unindexed segments scanned in
	// full.
	Warnings []string
}

// ReplaySpoolWindow replays the spool directory's datagrams inside the
// requested time window through the ingestor, fanning segment decoding
// out to opts.Workers concurrent readers. Corruption never fails the
// replay: complete records before a tear are delivered and the loss is
// reported in the returned report, so one torn segment cannot cost the
// rest of a capture. With opts.Unordered (which requires an ingestor
// from NewUnorderedIngestor), readers feed the pipeline directly as
// segments decode, registered as a low-watermark source so flows still
// expire mid-replay — the multi-core replay path.
func ReplaySpoolWindow(in *ingest.Ingestor, dir string, opts SpoolReplayOptions) (*SpoolReplayReport, error) {
	replayOpts := spool.ReplayOptions{
		From:      opts.From,
		To:        opts.To,
		Workers:   opts.Workers,
		Unordered: opts.Unordered,
		// Segment read spans land in the same flight recorder as the
		// ingest spans the replay feeds (nil when tracing is off).
		Trace: in.Trace(),
	}
	if opts.Unordered {
		if !in.Unordered() {
			return nil, errors.New("booters: unordered spool replay requires an order-tolerant ingestor (NewUnorderedIngestor)")
		}
		src := in.RegisterSource()
		defer src.Close()
		replayOpts.OnWatermark = src.Advance
	}
	stats, err := spool.ReplayWindow(dir, replayOpts, func(d ingest.Datagram) error {
		if err := in.IngestDatagram(d); errors.Is(err, ingest.ErrClosed) {
			return err
		}
		return nil
	})
	rep := &SpoolReplayReport{
		Datagrams:       stats.Records,
		Filtered:        stats.Filtered,
		SegmentsRead:    stats.SegmentsRead,
		SegmentsSkipped: stats.SegmentsSkipped,
		Warnings:        stats.Warnings,
	}
	for _, torn := range stats.Torn {
		rep.DataLoss = append(rep.DataLoss,
			fmt.Sprintf("%s: %s (%d complete records recovered)", torn.Segment, torn.Reason, torn.Records))
	}
	return rep, err
}

// PanelFromIngest bridges a completed ingestion run into a dataset.Panel so
// the ingested stream can feed the models that read the weekly attack
// series: FitGlobalModel, FitCountryModel, Analyze, AnalyzeNCA — and,
// through the country-by-protocol breakdown the pipeline tracks
// incrementally, the Figure 6 protocol-share exhibits. The one field the
// stream cannot know — the booter self-report panel (Figure 7/8) — is left
// empty and still requires the generated dataset.
func PanelFromIngest(res *ingest.Result) *dataset.Panel {
	p := &dataset.Panel{
		Start:           res.Start,
		Weeks:           res.Weeks,
		Global:          res.Global.Clone(),
		ByCountry:       make(map[string]*timeseries.Series, len(res.ByCountry)),
		ByProtocol:      make(map[protocols.Protocol]*timeseries.Series, len(res.ByProtocol)),
		CountryProtocol: make(map[string]map[protocols.Protocol]*timeseries.Series, len(res.CountryProtocol)),
	}
	for c, s := range res.ByCountry {
		p.ByCountry[c] = s.Clone()
	}
	for proto, s := range res.ByProtocol {
		p.ByProtocol[proto] = s.Clone()
	}
	for c, cp := range res.CountryProtocol {
		dst := make(map[protocols.Protocol]*timeseries.Series, len(cp))
		for proto, s := range cp {
			dst[proto] = s.Clone()
		}
		p.CountryProtocol[c] = dst
	}
	return p
}
