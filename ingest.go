package booters

import (
	"booters/internal/dataset"
	"booters/internal/ingest"
	"booters/internal/protocols"
	"booters/internal/timeseries"
)

// NewIngestor starts a streaming honeypot-ingestion pipeline covering the
// paper's five-year panel span with the given shard count (<= 0 means
// GOMAXPROCS). Feed it packets or wire-format datagrams from any number of
// goroutines, then Close it and pass the result through PanelFromIngest to
// run the paper's models on the ingested series.
func NewIngestor(shards int) (*ingest.Ingestor, error) {
	return ingest.New(ingest.Config{
		Shards: shards,
		Start:  dataset.SpanStart,
		End:    dataset.SpanEnd,
	})
}

// PanelFromIngest bridges a completed ingestion run into a dataset.Panel so
// the ingested stream can feed the models that read the weekly attack
// series: FitGlobalModel, FitCountryModel, Analyze, AnalyzeNCA. Fields the
// stream cannot know — planted ground truth, the self-report panel, the
// country-by-protocol breakdown — are left empty, so exhibits that need
// them (Figure 6's protocol-by-country shares, Figure 7/8's self-report
// panel) still require the generated dataset.
func PanelFromIngest(res *ingest.Result) *dataset.Panel {
	p := &dataset.Panel{
		Start:           res.Start,
		Weeks:           res.Weeks,
		Global:          res.Global.Clone(),
		ByCountry:       make(map[string]*timeseries.Series, len(res.ByCountry)),
		ByProtocol:      make(map[protocols.Protocol]*timeseries.Series, len(res.ByProtocol)),
		CountryProtocol: make(map[string]map[protocols.Protocol]*timeseries.Series),
	}
	for c, s := range res.ByCountry {
		p.ByCountry[c] = s.Clone()
	}
	for proto, s := range res.ByProtocol {
		p.ByProtocol[proto] = s.Clone()
	}
	return p
}
