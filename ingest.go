package booters

import (
	"errors"

	"booters/internal/dataset"
	"booters/internal/honeypot"
	"booters/internal/ingest"
	"booters/internal/protocols"
	"booters/internal/spool"
	"booters/internal/timeseries"
)

// NewIngestor starts a streaming honeypot-ingestion pipeline covering the
// paper's five-year panel span with the given shard count (<= 0 means
// GOMAXPROCS). Feed it packets or wire-format datagrams from any number of
// goroutines, then Close it and pass the result through PanelFromIngest to
// run the paper's models on the ingested series.
//
// Optional sinks (ingest.NewTopKSink, ingest.NewNDJSONSink, or your own
// ingest.Sink) receive every closed flow alongside the built-in weekly
// panel; each must be a fresh instance.
func NewIngestor(shards int, sinks ...ingest.Sink) (*ingest.Ingestor, error) {
	return ingest.New(ingest.Config{
		Shards: shards,
		Start:  dataset.SpanStart,
		End:    dataset.SpanEnd,
		Sinks:  sinks,
	})
}

// RecordSpool re-encodes decoded packets as wire-format datagrams and
// records them to an on-disk spool directory, so an expensive capture or
// synthetic market run is generated once and replayed many times (see
// ReplaySpool). It returns the number of datagrams recorded.
func RecordSpool(dir string, packets []honeypot.Packet) (uint64, error) {
	w, err := spool.Create(dir, spool.Options{})
	if err != nil {
		return 0, err
	}
	for _, d := range ingest.Datagrams(packets) {
		if err := w.Append(d); err != nil {
			w.Close()
			return w.Count(), err
		}
	}
	return w.Count(), w.Close()
}

// ReplaySpool streams every datagram recorded in the spool directory
// through the ingestor's wire-format decode path and returns the number of
// datagrams read. Datagrams the pipeline rejects (unknown port, malformed
// payload) are counted in its Stats and skipped, mirroring a live sensor
// that logs and keeps capturing; the replay only stops for spool errors or
// a closed ingestor.
func ReplaySpool(in *ingest.Ingestor, dir string) (uint64, error) {
	var n uint64
	err := spool.Replay(dir, func(d ingest.Datagram) error {
		n++
		if err := in.IngestDatagram(d); errors.Is(err, ingest.ErrClosed) {
			return err
		}
		return nil
	})
	return n, err
}

// PanelFromIngest bridges a completed ingestion run into a dataset.Panel so
// the ingested stream can feed the models that read the weekly attack
// series: FitGlobalModel, FitCountryModel, Analyze, AnalyzeNCA. Fields the
// stream cannot know — planted ground truth, the self-report panel, the
// country-by-protocol breakdown — are left empty, so exhibits that need
// them (Figure 6's protocol-by-country shares, Figure 7/8's self-report
// panel) still require the generated dataset.
func PanelFromIngest(res *ingest.Result) *dataset.Panel {
	p := &dataset.Panel{
		Start:           res.Start,
		Weeks:           res.Weeks,
		Global:          res.Global.Clone(),
		ByCountry:       make(map[string]*timeseries.Series, len(res.ByCountry)),
		ByProtocol:      make(map[protocols.Protocol]*timeseries.Series, len(res.ByProtocol)),
		CountryProtocol: make(map[string]map[protocols.Protocol]*timeseries.Series),
	}
	for c, s := range res.ByCountry {
		p.ByCountry[c] = s.Clone()
	}
	for proto, s := range res.ByProtocol {
		p.ByProtocol[proto] = s.Clone()
	}
	return p
}
