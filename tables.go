package booters

import (
	"time"

	"booters/internal/dataset"
	"booters/internal/geo"
	"booters/internal/timeseries"
)

// CountrySharesAt computes each country's percentage share of globally
// observed attacks during the calendar month (year, month) — one column of
// the paper's Table 3. Because attacks can be attributed to more than one
// country, the shares may sum above 100%.
func CountrySharesAt(p *dataset.Panel, year, month int) map[string]float64 {
	from := timeseries.WeekOf(time.Date(year, time.Month(month), 1, 0, 0, 0, 0, time.UTC))
	to := timeseries.WeekOf(time.Date(year, time.Month(month), 1, 0, 0, 0, 0, time.UTC).AddDate(0, 1, 0))
	total := p.Global.Slice(from, to).Total()
	counts := make(map[string]float64, len(p.ByCountry))
	for c, s := range p.ByCountry {
		counts[c] = s.Slice(from, to).Total()
	}
	return geo.Shares(counts, total)
}

// Table3Years are the February snapshots the paper tabulates.
var Table3Years = []int{2015, 2016, 2017, 2018, 2019}

// Table3 computes the full share table: country -> year -> percent share,
// for the eight Table 3 countries, using each year's February.
func Table3(p *dataset.Panel) map[string]map[int]float64 {
	countries := []string{geo.US, geo.FR, geo.DE, geo.CN, geo.UK, geo.PL, geo.RU, geo.NL}
	out := make(map[string]map[int]float64, len(countries))
	for _, c := range countries {
		out[c] = make(map[int]float64, len(Table3Years))
	}
	for _, y := range Table3Years {
		shares := CountrySharesAt(p, y, 2)
		for _, c := range countries {
			out[c][y] = shares[c]
		}
	}
	return out
}
