package booters

// Streaming ingestion benchmarks, in bench_test.go's reporting style: each
// reports packets/sec (and packets/op) so BENCH_*.json runs can track
// pipeline throughput alongside the model-fitting exhibits. Run with:
//
//	go test -bench Ingest -benchmem
//
// The replay is a ~1M-packet synthetic stream generated once per process
// from the market simulator. Shard scaling (1 vs 4 vs GOMAXPROCS) is real
// parallelism: on a single-core host the multi-shard numbers measure
// routing overhead only, on multicore they measure speedup.

import (
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"booters/internal/honeypot"
	"booters/internal/ingest"
	"booters/internal/obs"
	"booters/internal/obs/trace"
	"booters/internal/spool"
)

var (
	ingestStreamOnce sync.Once
	ingestStream     []honeypot.Packet
	ingestStreamErr  error
)

// ingestBenchStart anchors the benchmark replay window.
var ingestBenchStart = time.Date(2018, time.January, 1, 0, 0, 0, 0, time.UTC)

const ingestBenchWeeks = 26

// benchIngestStream generates (once) the shared ~1M-packet replay.
func benchIngestStream(b *testing.B) []honeypot.Packet {
	b.Helper()
	ingestStreamOnce.Do(func() {
		ingestStream, ingestStreamErr = ingest.SyntheticStream(ingest.StreamConfig{
			Seed:           DefaultSeed,
			Start:          ingestBenchStart,
			Weeks:          ingestBenchWeeks,
			Sensors:        8,
			AttacksPerWeek: 2250,
		})
	})
	if ingestStreamErr != nil {
		b.Fatal(ingestStreamErr)
	}
	return ingestStream
}

// benchIngestConfig is the pipeline configuration under benchmark.
func benchIngestConfig(shards int) ingest.Config {
	return ingest.Config{
		Shards: shards,
		Start:  ingestBenchStart,
		End:    ingestBenchStart.AddDate(0, 0, 7*ingestBenchWeeks-1),
	}
}

// runIngestBenchmark replays the stream through a fresh pipeline per
// iteration and reports throughput. withMetrics attaches a full obs
// registry — the per-packet hot path then pays its one uncontended
// atomic add — so benchjson can gate the instrumentation overhead
// (BenchmarkIngest1Shard vs BenchmarkIngest1ShardMetrics, ≤3% ns/op).
// withTrace attaches a sampling tracer (1 batch in 16) the same way, so
// the same gate covers the flight recorder's sampled overhead.
func runIngestBenchmark(b *testing.B, shards int, withMetrics, withTrace bool) {
	packets := benchIngestStream(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := benchIngestConfig(shards)
		if withMetrics {
			cfg.Metrics = obs.NewRegistry()
		}
		if withTrace {
			// Slow-span promotion off: the gate measures steady sampling
			// cost, not one scheduler hiccup's log line.
			cfg.Trace = trace.New(trace.Config{SampleEvery: 16, SlowThreshold: -1})
		}
		in, err := ingest.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range packets {
			if err := in.Ingest(p); err != nil {
				b.Fatal(err)
			}
		}
		res, err := in.Close()
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.Attacks == 0 {
			b.Fatal("no attacks classified")
		}
		if withMetrics {
			if got, _ := cfg.Metrics.Sum("booters_ingest_packets_total"); got != float64(len(packets)) {
				b.Fatalf("metrics counted %v packets, want %d", got, len(packets))
			}
		}
		if withTrace {
			if len(cfg.Trace.Snapshot()) == 0 {
				b.Fatal("tracing on but no spans recorded")
			}
		}
	}
	b.ReportMetric(float64(len(packets))*float64(b.N)/b.Elapsed().Seconds(), "packets/sec")
	b.ReportMetric(float64(len(packets)), "packets/op")
}

func BenchmarkIngest1Shard(b *testing.B) { runIngestBenchmark(b, 1, false, false) }
func BenchmarkIngest4Shard(b *testing.B) { runIngestBenchmark(b, 4, false, false) }
func BenchmarkIngestMaxShard(b *testing.B) {
	runIngestBenchmark(b, runtime.GOMAXPROCS(0), false, false)
}

// Metrics-on twins: the same replay with the registry attached. CI's
// bench smoke compares these against the plain runs via benchjson.
func BenchmarkIngest1ShardMetrics(b *testing.B) { runIngestBenchmark(b, 1, true, false) }
func BenchmarkIngest4ShardMetrics(b *testing.B) { runIngestBenchmark(b, 4, true, false) }

// Tracing-on twins: the same replay with the flight recorder sampling 1
// batch in 16. CI gates BenchmarkIngest1Shard vs
// BenchmarkIngest1ShardTraced the same way (≤3% ns/op).
func BenchmarkIngest1ShardTraced(b *testing.B) { runIngestBenchmark(b, 1, false, true) }
func BenchmarkIngest4ShardTraced(b *testing.B) { runIngestBenchmark(b, 4, false, true) }

// BenchmarkIngestBatchBaseline runs the same replay through the
// single-threaded batch reference — the number the sharded pipeline has to
// beat on multicore hardware.
func BenchmarkIngestBatchBaseline(b *testing.B) {
	packets := benchIngestStream(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ingest.Batch(benchIngestConfig(1), packets)
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.Attacks == 0 {
			b.Fatal("no attacks classified")
		}
	}
	b.ReportMetric(float64(len(packets))*float64(b.N)/b.Elapsed().Seconds(), "packets/sec")
	b.ReportMetric(float64(len(packets)), "packets/op")
}

// Fan-out benchmarks: the same replay with 1, 2 and 3 sinks attached, all
// at 4 shards. The acceptance bar is <10% throughput loss for ≥2 sinks
// versus the panel-only path — per-shard sink branches keep the fan-out
// off the packet hot path, so the extra cost is per closed flow, not per
// packet.

// runIngestFanout replays the shared stream with extra sinks built fresh
// per iteration (a sink instance serves one run).
func runIngestFanout(b *testing.B, mkSinks func() []ingest.Sink) {
	packets := benchIngestStream(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := benchIngestConfig(4)
		cfg.Sinks = mkSinks()
		in, err := ingest.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range packets {
			if err := in.Ingest(p); err != nil {
				b.Fatal(err)
			}
		}
		res, err := in.Close()
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.Attacks == 0 {
			b.Fatal("no attacks classified")
		}
	}
	b.ReportMetric(float64(len(packets))*float64(b.N)/b.Elapsed().Seconds(), "packets/sec")
	b.ReportMetric(float64(len(packets)), "packets/op")
}

func BenchmarkIngestFanoutPanelOnly(b *testing.B) {
	runIngestFanout(b, func() []ingest.Sink { return nil })
}

func BenchmarkIngestFanout2Sinks(b *testing.B) {
	runIngestFanout(b, func() []ingest.Sink {
		return []ingest.Sink{ingest.NewTopKSink(10)}
	})
}

func BenchmarkIngestFanout3Sinks(b *testing.B) {
	runIngestFanout(b, func() []ingest.Sink {
		return []ingest.Sink{ingest.NewTopKSink(10), ingest.NewNDJSONSink(io.Discard)}
	})
}

// benchSpool records the shared stream to an on-disk spool under the
// benchmark's temp dir (auto-removed when it finishes), untimed, so the
// replay benchmarks measure disk replay rather than recording. Segments
// rotate at 8 MiB instead of the 64 MiB default so the ~66 MB stream
// spans enough segments (~9 raw) that the multi-reader benchmarks
// measure real fan-out, not a two-segment race.
func benchSpool(b *testing.B, codecName string) string {
	b.Helper()
	packets := benchIngestStream(b)
	codec, err := spool.CodecByName(codecName)
	if err != nil {
		b.Fatal(err)
	}
	dir := filepath.Join(b.TempDir(), "spool")
	w, err := spool.Create(dir, spool.Options{Codec: codec, SegmentBytes: 8 << 20})
	if err != nil {
		b.Fatal(err)
	}
	for _, d := range ingest.Datagrams(packets) {
		if err := w.Append(d); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	return dir
}

// reportSpoolFootprint attaches the on-disk cost to a spool benchmark:
// stored bytes/packet, which is numerically MB per million packets — the
// ROADMAP's cold-capture footprint metric.
func reportSpoolFootprint(b *testing.B, dir string, packets uint64) {
	b.Helper()
	idx, err := spool.LoadIndex(dir)
	if err != nil {
		b.Fatal(err)
	}
	var stored uint64
	for _, s := range idx.Segments {
		stored += s.StoredBytes
	}
	b.ReportMetric(float64(stored)/float64(packets), "bytes/packet")
}

// runSpoolRecord measures spool write throughput (datagram encode +
// block framing + optional compression + buffered sequential write) and
// reports the resulting bytes/packet footprint.
func runSpoolRecord(b *testing.B, codecName string) {
	datagrams := ingest.Datagrams(benchIngestStream(b))
	var lastDir string
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dir, err := os.MkdirTemp(b.TempDir(), "spool")
		if err != nil {
			b.Fatal(err)
		}
		codec, err := spool.CodecByName(codecName)
		if err != nil {
			b.Fatal(err)
		}
		w, err := spool.Create(dir, spool.Options{Codec: codec})
		if err != nil {
			b.Fatal(err)
		}
		for _, d := range datagrams {
			if err := w.Append(d); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		lastDir = dir
	}
	b.StopTimer()
	b.ReportMetric(float64(len(datagrams))*float64(b.N)/b.Elapsed().Seconds(), "packets/sec")
	b.ReportMetric(float64(len(datagrams)), "packets/op")
	reportSpoolFootprint(b, lastDir, uint64(len(datagrams)))
}

func BenchmarkSpoolRecord(b *testing.B)     { runSpoolRecord(b, "none") }
func BenchmarkSpoolRecordLZ4(b *testing.B)  { runSpoolRecord(b, "lz4") }
func BenchmarkSpoolRecordZstd(b *testing.B) { runSpoolRecord(b, "zstd") }

// runSpoolRead measures raw replay off disk — decode only, no pipeline
// behind it — at the given reader count.
func runSpoolRead(b *testing.B, codecName string, workers int) {
	dir := benchSpool(b, codecName)
	want := uint64(len(benchIngestStream(b)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var n uint64
		stats, err := spool.ReplayWindow(dir, spool.ReplayOptions{Workers: workers}, func(ingest.Datagram) error { n++; return nil })
		if err != nil {
			b.Fatal(err)
		}
		if n != want || stats.DataLost() {
			b.Fatalf("replayed %d datagrams (want %d), torn=%v", n, want, stats.Torn)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(want)*float64(b.N)/b.Elapsed().Seconds(), "packets/sec")
	b.ReportMetric(float64(want), "packets/op")
	reportSpoolFootprint(b, dir, want)
}

func BenchmarkSpoolRead(b *testing.B)             { runSpoolRead(b, "none", 1) }
func BenchmarkSpoolRead4Readers(b *testing.B)     { runSpoolRead(b, "none", 4) }
func BenchmarkSpoolReadLZ4(b *testing.B)          { runSpoolRead(b, "lz4", 1) }
func BenchmarkSpoolReadLZ44Readers(b *testing.B)  { runSpoolRead(b, "lz4", 4) }
func BenchmarkSpoolReadZstd(b *testing.B)         { runSpoolRead(b, "zstd", 1) }
func BenchmarkSpoolReadZstd4Readers(b *testing.B) { runSpoolRead(b, "zstd", 4) }

// runSpoolReplay measures the full record-once-replay-many path: the
// spooled capture streamed from disk — sequentially or via parallel
// segment readers, raw or compressed — through protocol decode and the
// sharded pipeline into the weekly panel.
func runSpoolReplay(b *testing.B, codecName string, workers int) {
	dir := benchSpool(b, codecName)
	total := uint64(len(benchIngestStream(b)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in, err := ingest.New(benchIngestConfig(runtime.GOMAXPROCS(0)))
		if err != nil {
			b.Fatal(err)
		}
		_, err = spool.ReplayWindow(dir, spool.ReplayOptions{Workers: workers}, func(d ingest.Datagram) error {
			in.IngestDatagram(d)
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := in.Close()
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.Packets != total {
			b.Fatalf("replayed %d packets, want %d", res.Stats.Packets, total)
		}
	}
	b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds(), "packets/sec")
	b.ReportMetric(float64(total), "packets/op")
}

func BenchmarkSpoolReplay(b *testing.B)             { runSpoolReplay(b, "none", 1) }
func BenchmarkSpoolReplay4Readers(b *testing.B)     { runSpoolReplay(b, "none", 4) }
func BenchmarkSpoolReplayLZ4(b *testing.B)          { runSpoolReplay(b, "lz4", 1) }
func BenchmarkSpoolReplayLZ44Readers(b *testing.B)  { runSpoolReplay(b, "lz4", 4) }
func BenchmarkSpoolReplayZstd(b *testing.B)         { runSpoolReplay(b, "zstd", 1) }
func BenchmarkSpoolReplayZstd4Readers(b *testing.B) { runSpoolReplay(b, "zstd", 4) }

// runSpoolReplayUnordered measures the order-tolerant replay path over
// the same spool: readers hand whole segments to an unordered pipeline
// as they finish them (no re-serialisation barrier), with the
// cross-reader low-watermark wired into the pipeline as its expiry
// source — the ordered-vs-unordered comparison the replay decision table
// in ARCHITECTURE.md is based on.
func runSpoolReplayUnordered(b *testing.B, codecName string, workers int) {
	dir := benchSpool(b, codecName)
	total := uint64(len(benchIngestStream(b)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := benchIngestConfig(runtime.GOMAXPROCS(0))
		cfg.Unordered = true
		in, err := ingest.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		src := in.RegisterSource()
		_, err = spool.ReplayWindow(dir, spool.ReplayOptions{
			Workers:     workers,
			Unordered:   true,
			OnWatermark: src.Advance,
		}, func(d ingest.Datagram) error {
			in.IngestDatagram(d)
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		src.Close()
		res, err := in.Close()
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.Packets != total {
			b.Fatalf("replayed %d packets, want %d (late=%d)", res.Stats.Packets, total, res.Stats.Late)
		}
	}
	b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds(), "packets/sec")
	b.ReportMetric(float64(total), "packets/op")
}

func BenchmarkSpoolReplayUnordered(b *testing.B)         { runSpoolReplayUnordered(b, "none", 1) }
func BenchmarkSpoolReplayUnordered4Readers(b *testing.B) { runSpoolReplayUnordered(b, "none", 4) }

// BenchmarkIngestSteadyState measures the per-packet cost of an
// already-running pipeline: one Ingestor serves every iteration, so the
// per-run setup the other ingest benchmarks pay (shard spin-up, panel
// series allocation) sits outside the timer and allocs/op reads the
// steady-state figure the zero-alloc work targets. The stream is replayed
// cyclically with a time shift per lap to keep packet times ascending for
// the ordered aggregator.
func BenchmarkIngestSteadyState(b *testing.B) {
	packets := benchIngestStream(b)
	span := packets[len(packets)-1].Time.Sub(packets[0].Time) + 24*time.Hour
	in, err := ingest.New(benchIngestConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	j, shift := 0, time.Duration(0)
	for i := 0; i < b.N; i++ {
		p := packets[j]
		p.Time = p.Time.Add(shift)
		if err := in.Ingest(p); err != nil {
			b.Fatal(err)
		}
		if j++; j == len(packets) {
			j, shift = 0, shift+span
		}
	}
	b.StopTimer()
	if _, err := in.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "packets/sec")
}

// BenchmarkSpoolReadSteadyRecord measures one sequential Next() on a
// codec-none spool — on unix this is the mmap zero-copy path, with the
// payload borrowed straight from the mapped segment. The reader is
// reopened when the spool is exhausted, amortised over ~1M records per
// pass, so allocs/op reads the per-record steady state.
func BenchmarkSpoolReadSteadyRecord(b *testing.B) {
	dir := benchSpool(b, "none")
	r, err := spool.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	var sink int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := r.Next()
		if err == io.EOF {
			r.Close()
			if r, err = spool.Open(dir); err != nil {
				b.Fatal(err)
			}
			d, err = r.Next()
		}
		if err != nil {
			b.Fatal(err)
		}
		sink += len(d.Payload)
	}
	b.StopTimer()
	r.Close()
	if sink == 0 {
		b.Fatal("no payload bytes read")
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "packets/sec")
}

// BenchmarkIngestWireDecode replays wire-format datagrams so the per-packet
// protocol decode (port lookup + request validation) is on the measured
// path.
func BenchmarkIngestWireDecode(b *testing.B) {
	packets := benchIngestStream(b)
	datagrams := ingest.Datagrams(packets)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in, err := ingest.New(benchIngestConfig(runtime.GOMAXPROCS(0)))
		if err != nil {
			b.Fatal(err)
		}
		for _, d := range datagrams {
			if err := in.IngestDatagram(d); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := in.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(datagrams))*float64(b.N)/b.Elapsed().Seconds(), "packets/sec")
	b.ReportMetric(float64(len(datagrams)), "packets/op")
}
