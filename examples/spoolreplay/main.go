// Spool replay: records a market-driven capture to a compressed on-disk
// spool once, then replays it twice through the streaming pipeline — the
// whole capture, and a two-week intervention window around a takedown —
// using the spool's per-segment index to skip everything outside the
// window and parallel segment readers to decode it.
//
// This is the paper's before/after-intervention workflow at capture
// scale: the expensive stream is generated (or captured) exactly once,
// and every model window after that replays straight off disk.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"booters"
	"booters/internal/ingest"
)

func main() {
	log.SetFlags(0)

	start := time.Date(2018, time.July, 2, 0, 0, 0, 0, time.UTC)
	const weeks = 8

	// Generate the capture once: a synthetic reflected-UDP stream shaped
	// by the booter-market simulator.
	packets, err := ingest.SyntheticStream(ingest.StreamConfig{
		Seed:           20191021,
		Start:          start,
		Weeks:          weeks,
		AttacksPerWeek: 400,
	})
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "spoolreplay")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	spoolDir := dir + "/capture"

	// Record it compressed. Small segments keep the example's index
	// interesting; production captures use the 64 MiB default.
	n, err := booters.RecordSpoolWith(spoolDir, packets, booters.SpoolRecordOptions{
		Codec:        "lz4",
		SegmentBytes: 256 << 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d datagrams (%d weeks) to a compressed spool\n", n, weeks)

	// Replay 1: the whole capture, four segment readers.
	whole, err := booters.NewIngestor(0)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := booters.ReplaySpoolWindow(whole, spoolDir, booters.SpoolReplayOptions{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	res, err := whole.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full replay:     %d datagrams, %d segments read, %d attacks\n",
		rep.Datagrams, rep.SegmentsRead, res.Stats.Attacks)

	// Replay 2: only weeks 4-5, as if re-fitting a model window around
	// an intervention in week 5. Segments wholly outside the window are
	// never opened.
	from := start.AddDate(0, 0, 21)
	to := start.AddDate(0, 0, 35)
	win, err := booters.NewIngestor(0)
	if err != nil {
		log.Fatal(err)
	}
	rep, err = booters.ReplaySpoolWindow(win, spoolDir, booters.SpoolReplayOptions{
		From:    from,
		To:      to,
		Workers: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	wres, err := win.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("windowed replay: %d datagrams, %d segments skipped via index, %d attacks\n",
		rep.Datagrams, rep.SegmentsSkipped, wres.Stats.Attacks)
	for _, w := range rep.Warnings {
		fmt.Println("warning:", w)
	}
	for _, l := range rep.DataLoss {
		fmt.Println("DATA LOSS:", l)
	}

	// The windowed panel is the full panel restricted to the window —
	// print the stream's weeks side by side. The facade panel spans the
	// paper's full study period, so index from the stream's first week.
	first := res.Global.IndexOfTime(start)
	if first < 0 {
		log.Fatal("stream start outside the panel span")
	}
	fmt.Println("\nweek         full  windowed")
	for wk := 0; wk < weeks; wk++ {
		fmt.Printf("%s  %5.0f  %8.0f\n",
			res.Global.Week(first+wk), res.Global.Values[first+wk], wres.Global.Values[first+wk])
	}
}
