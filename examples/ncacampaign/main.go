// NCA campaign: reproduces the paper's Figure 5 analysis — UK and US
// weekly attack series indexed to 100 at June 2016, with linear trend
// slopes before and during the NCA's Google-advert campaign, showing the
// UK's growth flattening while the US keeps rising.
package main

import (
	"fmt"
	"log"

	"booters"
	"booters/internal/report"
)

func main() {
	log.SetFlags(0)

	panel, err := booters.GeneratePanel(booters.DefaultSeed)
	if err != nil {
		log.Fatal(err)
	}
	nca, err := booters.AnalyzeNCA(panel)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(report.SeriesChart("UK attacks (indexed, Jun 2016 = 100)", nca.UK, 9))
	fmt.Println(report.SeriesChart("US attacks (indexed, Jun 2016 = 100)", nca.US, 9))

	fmt.Println("Linear trend slopes (indexed points per week):")
	fmt.Printf("                 %8s  %8s\n", "UK", "US")
	fmt.Printf("  Jan-Dec 2017   %8.2f  %8.2f\n", nca.PreUKSlope, nca.PreUSSlope)
	fmt.Printf("  NCA campaign   %8.2f  %8.2f\n", nca.CampaignUKSlope, nca.CampaignUSSlope)

	did := (nca.CampaignUKSlope - nca.PreUKSlope) - (nca.CampaignUSSlope - nca.PreUSSlope)
	fmt.Printf("\ndifference-in-differences (UK change minus US change): %.2f\n", did)
	if did < 0 {
		fmt.Println("=> the UK trend flattened relative to the US during the advert campaign,")
		fmt.Println("   the paper's evidence that targeted messaging suppressed new demand.")
	} else {
		fmt.Println("=> no relative flattening detected on this seed.")
	}
}
