// Market shock: simulates the booter market through the Webstresser and
// Xmas2018 interventions and reports the structural effects the paper
// observes — death spikes, displacement to surviving providers, the market
// concentrating on one booter, and the March resurrection.
package main

import (
	"fmt"
	"log"
	"math"

	"booters/internal/market"
	"booters/internal/scrape"
)

func main() {
	log.SetFlags(0)

	const weeks = 73 // Nov 2017 - Mar 2019
	const webstresserWeek = 24
	const xmasWeek = 58

	cfg := market.DefaultConfig(weeks, 1)
	cfg.Shocks = []market.Shock{
		{
			Week:                 webstresserWeek,
			KillLargest:          1,
			KillSubcontractorsOf: true,
			Permanent:            true,
		},
		{
			Week:             xmasWeek,
			KillLargest:      2,
			KillFraction:     0.2,
			Permanent:        true,
			EntrySuppression: 0.3,
			EntryWeeks:       6,
			ResurrectAfter:   11,
		},
	}
	sim, err := market.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Demand grows ~0.8% per week with a Christmas bump.
	var records []market.WeekRecord
	for w := 0; w < weeks; w++ {
		demand := 70000 * math.Exp(0.008*float64(w))
		if w%52 >= 50 || w%52 <= 1 {
			demand *= 1.1
		}
		rec, err := sim.Step(demand)
		if err != nil {
			log.Fatal(err)
		}
		records = append(records, rec)
	}

	fmt.Println("week  demand   served  alive  births deaths resurrections  top-share")
	for _, rec := range records {
		if rec.Week%6 != 0 && rec.Week != webstresserWeek && rec.Week != xmasWeek {
			continue
		}
		marker := "  "
		switch rec.Week {
		case webstresserWeek:
			marker = "W " // Webstresser takedown
		case xmasWeek:
			marker = "X " // Xmas2018
		}
		top := sim.TopShare(rec.Week, rec.Week+1)
		fmt.Printf("%s%3d  %7.0f  %7.0f  %5d  %6d %6d %13d  %8.0f%%\n",
			marker, rec.Week, rec.Demand, rec.Served, rec.AliveProviders,
			rec.Births, rec.Deaths, rec.Resurrections, 100*top)
	}

	fmt.Printf("\nmarket concentration: top provider share %.0f%% before Webstresser, %.0f%% after Xmas2018\n",
		100*sim.TopShare(0, webstresserWeek), 100*sim.TopShare(xmasWeek, xmasWeek+10))

	// Rebuild the churn series the way the scraper would observe it.
	var sites []*scrape.SiteHistory
	for _, prov := range sim.Providers() {
		h := &scrape.SiteHistory{Name: prov.Name}
		var running float64
		for w := 0; w < weeks; w++ {
			n := records[w].ServedByProvider[prov.ID]
			running += n
			h.Obs = append(h.Obs, scrape.Observation{Week: w, Up: n > 0, Total: running})
		}
		sites = append(sites, h)
	}
	churn := scrape.ChurnSeries(sites, weeks)
	fmt.Printf("\ndeaths at Webstresser week: %d; at Xmas2018 week: %d (background ~2-4)\n",
		churn[webstresserWeek].Deaths, churn[xmasWeek].Deaths)
	var resurrections int
	for w := xmasWeek + 8; w < weeks && w < xmasWeek+16; w++ {
		resurrections += churn[w].Resurrections
	}
	fmt.Printf("resurrections 8-16 weeks after Xmas2018 (the March return): %d\n", resurrections)
}
