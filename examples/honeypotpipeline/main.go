// Honeypot pipeline: runs real UDP honeypot sensors on loopback sockets,
// replays an amplification attack and a benign scan against them using the
// library's actual protocol wire formats, then pushes the merged sensor
// logs through flow aggregation and the paper's attack/scan classifier.
//
// This exercises the full measurement path of the paper's first dataset:
// packets on the wire -> per-sensor logs -> 15-minute-gap flows -> "more
// than 5 packets at any sensor" classification.
package main

import (
	"fmt"
	"log"
	"net"
	"net/netip"
	"time"

	"booters/internal/honeypot"
	"booters/internal/protocols"
)

func main() {
	log.SetFlags(0)

	// A simulated clock: the replay below is compressed in real time but
	// stamped seconds apart so flow aggregation sees realistic spacing.
	base := time.Date(2018, 12, 19, 12, 0, 0, 0, time.UTC)
	var tick int
	clock := func() time.Time {
		tick++
		return base.Add(time.Duration(tick) * 2 * time.Second)
	}

	// Five sensors, each an LDAP reflector behind a loopback UDP socket.
	fleet := honeypot.NewFleet(5, time.Hour)
	servers, addrs, err := honeypot.ListenFleet(fleet, protocols.LDAP, clock)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	for i, ap := range addrs {
		fmt.Printf("sensor %d listening on %s (LDAP reflector)\n", i, ap)
	}

	client, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	victim := netip.MustParseAddr("10.11.12.13")
	scanner := netip.MustParseAddr("11.1.1.1")
	req := protocols.LDAP.Request()

	// The "booter": 60 spoofed CLDAP searchRequests aimed at the victim,
	// sprayed across all sensors.
	for i := 0; i < 60; i++ {
		if err := honeypot.SendSpoofed(client, addrs[i%len(addrs)], victim, req); err != nil {
			log.Fatal(err)
		}
	}
	// A scanner probing each sensor once.
	for _, ap := range addrs {
		if err := honeypot.SendSpoofed(client, ap, scanner, req); err != nil {
			log.Fatal(err)
		}
	}
	// And some malformed noise that must not be reflected.
	if err := honeypot.SendSpoofed(client, addrs[0], victim, []byte("GET / HTTP/1.1")); err != nil {
		log.Fatal(err)
	}

	// Wait until the sensors have processed every datagram.
	deadline := time.Now().Add(3 * time.Second)
	for {
		var received int
		for _, s := range fleet.Sensors {
			received += s.Stats().Received
		}
		if received >= 66 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Measurement side: merge sensor logs, aggregate flows, classify.
	agg := honeypot.NewAggregator()
	for _, p := range fleet.DrainLogs() {
		if err := agg.Offer(p); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\nCompleted flows:")
	var attacks, scans int
	for _, f := range agg.Flush() {
		c := honeypot.Classify(f)
		fmt.Printf("  victim=%s proto=%s packets=%d sensors=%d max/sensor=%d -> %s\n",
			f.Key.Victim, f.Key.Proto, f.TotalPackets, len(f.PacketsBySensor), f.MaxSensorPackets(), c)
		switch c {
		case honeypot.Attack:
			attacks++
		case honeypot.Scan:
			scans++
		}
	}
	fmt.Printf("\nclassified %d attack(s) and %d scan(s)\n", attacks, scans)

	// The ethics-appendix behaviour: the rate limiter tripped, the victim
	// was reported centrally, and most attack packets were absorbed.
	var reflected, received int
	for _, s := range fleet.Sensors {
		st := s.Stats()
		reflected += st.Reflected
		received += st.Received
	}
	fmt.Printf("sensors received %d packets, reflected only %d (victims suppressed: %d registered)\n",
		received, reflected, fleet.Registry.Len())
}
