// External data: the downstream-adoption workflow. Export the weekly panel
// to CSV, load it back as if it were your own measurement data, define a
// custom intervention window, fit the negative binomial interrupted time
// series model, and run the residual diagnostics and placebo robustness
// check.
//
// Swap the exported file for your own weekly counts (same CSV header) to
// analyse a different intervention with this library.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"booters"
	"booters/internal/dataset"
	"booters/internal/its"
)

func main() {
	log.SetFlags(0)

	// 1. Export: in a real deployment this is `bootergen` writing a file;
	// here the round trip stays in memory.
	source, err := booters.GeneratePanel(booters.DefaultSeed)
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dataset.WritePanelCSV(&buf, source); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exported %d weeks of CSV (%d bytes)\n", source.Weeks, buf.Len())

	// 2. Load it back as external data (ground-truth fields are absent,
	// exactly as they would be for real measurements).
	panel, err := dataset.LoadPanelCSV(&buf)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Define your own intervention windows and fit.
	ivs := []its.Intervention{
		{Name: "Xmas2018", Start: time.Date(2018, 12, 19, 0, 0, 0, 0, time.UTC), Weeks: 10},
		{Name: "HackForums", Start: time.Date(2016, 10, 28, 0, 0, 0, 0, time.UTC), Weeks: 13},
	}
	from, to := booters.ModelWindow()
	series := panel.Global.Slice(from, to)
	model, err := its.Fit(series, its.DefaultSpec(ivs))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfitted effects on the loaded data:")
	for _, eff := range model.Effects {
		fmt.Printf("  %-11s %6.1f%%  [%6.1f%%, %6.1f%%]  p=%.4f%s\n",
			eff.Name, eff.Mean, eff.Lower95, eff.Upper95, eff.P, eff.Stars())
	}

	// 4. Check the model is adequate before believing the estimates.
	diag, err := model.Diagnose()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndiagnostics: Ljung-Box Q(8)=%.1f p=%.3f, Pearson dispersion %.2f\n",
		diag.LjungBox.Stat, diag.LjungBox.P, diag.PearsonDispersion)

	// 5. Placebo robustness: is the Xmas2018 drop specific to its date?
	pt, err := its.PlaceboTest(series, its.DefaultSpec(ivs), "Xmas2018")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placebo check: observed coef %.3f ranks %d of %d placebo windows (p=%.3f)\n",
		pt.Observed, pt.Rank, len(pt.Placebos), pt.P)
	if pt.P < 0.05 {
		fmt.Println("=> the drop is specific to the intervention date")
	}
}
