// Quickstart: generate the reproduction dataset, fit the paper's global
// negative binomial intervention model, and print each intervention's
// estimated effect — the headline analysis of the paper in ~30 lines.
package main

import (
	"fmt"
	"log"

	"booters"
)

func main() {
	log.SetFlags(0)

	panel, err := booters.GeneratePanel(booters.DefaultSeed)
	if err != nil {
		log.Fatalf("generate panel: %v", err)
	}
	fmt.Printf("generated %d weeks of attack data (%.1fM attacks observed)\n",
		panel.Weeks, panel.Global.Total()/1e6)

	model, err := booters.FitGlobalModel(panel)
	if err != nil {
		log.Fatalf("fit model: %v", err)
	}
	fmt.Printf("\nNB2 model: alpha=%.4f loglik=%.1f (%d weekly observations)\n",
		model.Fit.Alpha, model.Fit.LogLik, model.Fit.N)

	fmt.Println("\nIntervention effects on weekly attack counts:")
	for _, eff := range model.Effects {
		lo, hi := eff.Lower95, eff.Upper95
		fmt.Printf("  %-12s %s  %6.1f%%  [%6.1f%%, %6.1f%%]  %d weeks  p=%.4f%s\n",
			eff.Name, eff.Start, eff.Mean, lo, hi, eff.Weeks, eff.P, eff.Stars())
	}

	trend, err := model.Fit.Coef("time")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nUnderlying trend: %+.3f%% per week (p=%.2g)\n",
		100*trend.Estimate, trend.P)
}
